"""A tour of the AGD format (§3): columns, chunks, compression,
random access, and extensibility.

Walks through everything Figure 2 shows: the manifest, per-column chunk
files with header/index/data sections, 3-bit base compaction, per-column
codec choice, on-the-fly absolute indices for random access, selective
column reads, manifest reconstruction from chunk files, and adding a
custom column with its own record type.

Run:  python examples/agd_format_tour.py
"""

import tempfile
from pathlib import Path

from repro.agd import (
    AGDDataset,
    LZMA,
    packed_size,
    read_chunk_header,
    reconstruct_manifest,
    register_record_codec,
)
from repro.formats import import_reads
from repro.genome import synthetic_dataset
from repro.storage import DirectoryStore


def main() -> None:
    reference, reads, _ = synthetic_dataset(
        genome_length=20_000, coverage=4.0, seed=123
    )
    workdir = Path(tempfile.mkdtemp(prefix="agd-tour-"))
    store = DirectoryStore(workdir)

    # -------------------------------------------------- columns & chunks
    dataset = import_reads(
        reads, "tour", store, chunk_size=200,
        reference=reference.manifest_entry(),
    )
    dataset.save_manifest(workdir)
    print(f"dataset in {workdir}")
    print(f"columns: {dataset.columns}; chunks: {dataset.num_chunks}; "
          f"records: {dataset.total_records}")

    # Each (chunk, column) pair is one file: test-0.bases, test-0.qual, ...
    files = sorted(p.name for p in workdir.iterdir())[:6]
    print(f"first files: {files}")

    # ------------------------------------------------- base compaction
    raw_bases = sum(len(r.bases) for r in reads)
    packed = sum(packed_size(len(r.bases)) for r in reads)
    stored = dataset.column_bytes("bases")
    print(f"\nbase compaction: {raw_bases:,} ASCII bases -> {packed:,} B "
          f"packed (3 bits/base, 21 per u64) -> {stored:,} B gzipped")

    # ------------------------------------------------- chunk anatomy
    blob = store.get("tour-0.bases")
    header = read_chunk_header(blob)
    print(f"\nchunk header: type={header.record_type!r} "
          f"codec={header.codec_name!r} records={header.record_count} "
          f"first_ordinal={header.first_ordinal} "
          f"data {header.uncompressed_size}->{header.compressed_size} B")

    # ------------------------------------------------ selective access
    # Reading one column touches only that column's files (§3's argument
    # against row-oriented FASTQ/SAM).
    quals = dataset.read_column("qual")
    print(f"\nselective read: qual column only -> {len(quals)} records, "
          f"{dataset.column_bytes('qual'):,} B read")

    # Random access via the on-the-fly absolute index.
    record_1234 = dataset.read_record("bases", 123)
    print(f"random access to record 123: {record_1234[:30]!r}...")

    # --------------------------------------------- per-column codecs
    store2 = DirectoryStore(workdir / "lzma")
    AGDDataset.create(
        "tour-lzma",
        {"metadata": [r.metadata for r in reads]},
        store2,
        chunk_size=200,
        codecs={"metadata": LZMA},
    )
    gzip_size = dataset.column_bytes("metadata")
    lzma_size = sum(
        len(store2.get(k)) for k in store2.keys()
    )
    print(f"\ncodec tradeoff (§3): metadata gzip {gzip_size:,} B "
          f"vs lzma {lzma_size:,} B")

    # ------------------------------------------ manifest reconstruction
    (workdir / "manifest.json").unlink()
    rebuilt = reconstruct_manifest(workdir)
    print(f"\nmanifest.json deleted and reconstructed from chunk files: "
          f"{rebuilt.num_chunks} chunks, {rebuilt.total_records} records")

    # ------------------------------------------------- extensibility
    # Add a new column with a custom record type: per-read GC fraction
    # stored as one byte (0..100).  "Any required parsing functions for a
    # new column may be added to Persona" (§3).
    class GcCodec:
        name = "gc"

        def encode(self, records):
            return bytes(records), [1] * len(records)

        def decode(self, data, index):
            return list(data)

        def byte_size(self, logical_length):
            return logical_length

        def decode_one(self, data, absolute, i):
            offset, size = absolute.record_span(i)
            return data[offset]

    register_record_codec("gc", GcCodec())
    from repro.genome import gc_content

    gc_column = [int(round(gc_content(r.bases) * 100)) for r in reads]
    dataset.append_column("gc", gc_column, record_type="gc")
    print(f"appended custom 'gc' column (record type 'gc'): "
          f"record 0 = {dataset.read_column('gc')[0]}% GC")
    print(f"columns now: {dataset.columns}")


if __name__ == "__main__":
    main()
