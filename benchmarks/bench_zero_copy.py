"""Zero-copy plane benchmark — pickled vs shared-memory process backend.

The tentpole claim of the shm buffer pool: for large-array payloads (the
shapes PR 3's vectorized kernels actually ship — column code arrays,
pileup matrices, merge-run blobs), a ``ProcessBackend(shm=True)`` moves
chunks between processes by *reference* into pooled shared-memory slabs,
while the pickled path copies every payload four times (pickle, pipe
write, pipe read, unpickle) each way.  Same tasks, byte-identical
results, ≥ 1.5x throughput on real multi-core hardware.

Conventions follow the PR 1 backend-scaling smoke: the speedup assertion
arms only on hosts with >= 2 CPUs (a single-core runner has no physical
parallelism and its pipes are never the bottleneck that matters); the
equivalence checks always arm.

Run:  pytest benchmarks/bench_zero_copy.py --benchmark-json=BENCH_zero_copy.json
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.dataflow import shm
from repro.dataflow.backends import ProcessBackend

#: Payload shape: one "column" of int64 codes per chunk, the size class
#: the columnar aligner feed and pileup matrices ship.
COLUMN_ELEMS = 1 << 19  # 4 MiB per payload
CHUNKS = 24
ROUNDS = 3
WORKERS = 2


def column_stat_task(shared, payload):
    """Cheap compute over a big payload: transport-bound by design, the
    regime where inter-stage data movement (not kernel compute) limits
    scaling.  Returns a quarter of the column (1 MiB — comfortably past
    the 64 KiB shm threshold), so the result-export direction is
    genuinely exercised too."""
    arr = payload
    return (arr[: len(arr) // 4].copy(), int(arr[0]), int(arr[-1]))


def _run(backend: ProcessBackend, payloads) -> "tuple[float, list]":
    best = None
    results = None
    # Warm the pool (fork + shared-state shipping) outside timed regions.
    backend.run_chunk(column_stat_task, payloads[:1])
    for _ in range(ROUNDS):
        start = time.monotonic()
        out = backend.run_chunk(column_stat_task, payloads)
        wall = time.monotonic() - start
        if best is None or wall < best:
            best, results = wall, out
    return best, results


@pytest.mark.skipif(not shm.shm_available(),
                    reason="POSIX shared memory unavailable")
def test_zero_copy_throughput(benchmark, report):
    cpus = os.cpu_count() or 1
    rng = np.random.default_rng(4242)
    payloads = [
        rng.integers(0, 1 << 40, size=COLUMN_ELEMS, dtype=np.int64)
        for _ in range(CHUNKS)
    ]
    volume = sum(p.nbytes for p in payloads)

    before = set(shm.list_segments("psna-"))
    pickled = ProcessBackend(workers=WORKERS, shm=False)
    try:
        pickled_wall, pickled_out = _run(pickled, payloads)
    finally:
        pickled.shutdown()
    pooled = ProcessBackend(workers=WORKERS, shm=True)
    try:
        shm_wall, shm_out = _run(pooled, payloads)
    finally:
        pooled.shutdown()
    leaked = sorted(set(shm.list_segments("psna-")) - before)

    speedup = pickled_wall / shm_wall if shm_wall else 0.0
    rep = report("zero_copy",
                 "Zero-copy plane — pickled vs shm process backend")
    rep.add(f"host CPUs: {cpus}; workers: {WORKERS}; payloads: {CHUNKS} x "
            f"{COLUMN_ELEMS * 8 / 1e6:.0f} MB ({volume / 1e6:.0f} MB/round)")
    rep.row("pickled process backend", "4 copies/crossing",
            f"{pickled_wall:.3f} s "
            f"({volume / pickled_wall / 1e6:.0f} MB/s)")
    rep.row("shm process backend", ">= 1.5x",
            f"{shm_wall:.3f} s "
            f"({volume / shm_wall / 1e6:.0f} MB/s, {speedup:.2f}x)")
    rep.metric("pickled_wall_seconds", pickled_wall)
    rep.metric("shm_wall_seconds", shm_wall)
    rep.metric("speedup", speedup)
    rep.metric("payload_bytes_per_round", volume)
    rep.add()
    rep.add("shape checks:")
    identical = all(
        np.array_equal(sa, pa) and sb == pb and sc == pc
        for (sa, sb, sc), (pa, pb, pc) in zip(shm_out, pickled_out)
    )
    rep.check("shm and pickled results identical", identical)
    rep.check("no /dev/shm segments leaked", not leaked)
    if cpus >= 2:
        rep.check(
            f"shm beats pickled by >= 1.5x on large-array payloads "
            f"({WORKERS} workers, {cpus} CPUs)",
            speedup >= 1.5,
        )
    else:
        rep.add(f"  [SKIPPED] >= 1.5x speedup gate needs >= 2 CPUs "
                f"(host has {cpus}); measured {speedup:.2f}x, "
                f"reported only")
    rep.finish()

    benchmark.pedantic(
        lambda: None, rounds=1, iterations=1,
    )
