"""Ablation — queue depth and memory bounding (§4.5).

The paper: "Persona controls memory pressure by limiting the queue length
and therefore the number of objects passed around ... Queue capacity is
kept at a level that ensures there is always data to feed the process
subgraph, but the individual servers do not have too many AGD chunks in
their pipelines, which can lead to stragglers."

This ablation sweeps the queue capacity of the alignment graph and
measures (a) peak chunks in flight — the memory bound — and (b) wall
time.  Deep queues buy nothing once the process subgraph is saturated;
the in-flight count is capped by capacity, which is the whole §4.5
argument for shallow queues.
"""

from __future__ import annotations

from repro.core.pipelines import align_dataset
from repro.core.subgraphs import AlignGraphConfig
from repro.formats.converters import import_reads
from repro.storage.base import MemoryStore


def test_ablation_queue_depth(benchmark, bench_reads, bench_reference,
                              bench_aligner, report):
    rows = []
    for depth in (1, 2, 8, 32):
        dataset = import_reads(
            bench_reads, f"qd{depth}", MemoryStore(), chunk_size=200,
            reference=bench_reference.manifest_entry(),
        )
        config = AlignGraphConfig(
            executor_threads=1, aligner_nodes=1, reader_nodes=1,
            parser_nodes=1, queue_depth=depth,
        )
        outcome = align_dataset(dataset, bench_aligner, config=config,
                                output_store=MemoryStore())
        queues = outcome.report["queues"]
        peak_in_flight = sum(q["max_depth"] for q in queues.values())
        rows.append({
            "depth": depth,
            "wall": outcome.wall_seconds,
            "peak": peak_in_flight,
        })

    rep = report("ablation_queue_depth",
                 "Ablation — queue depth vs memory and wall time (§4.5)")
    rep.add(f"{'capacity':>9} {'wall':>8} {'peak chunks in flight':>22}")
    for row in rows:
        rep.add(f"{row['depth']:>9} {row['wall']:>7.2f}s {row['peak']:>22}")
    shallow = rows[1]  # capacity 2 (the paper's default regime)
    deepest = rows[-1]
    rep.add()
    rep.add("shape checks:")
    rep.check(
        "peak in-flight chunks grow with queue capacity",
        deepest["peak"] > rows[0]["peak"],
    )
    rep.check(
        "peak in-flight chunks are bounded by total capacity",
        all(
            row["peak"] <= row["depth"] * 5 + 5  # 5 queues in the graph
            for row in rows
        ),
    )
    rep.check(
        "deep queues buy no speedup once the pipeline is fed (<15%)",
        deepest["wall"] > 0.85 * shallow["wall"],
    )
    rep.finish()

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
