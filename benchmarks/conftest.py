"""Shared benchmark fixtures and the paper-vs-measured report helper.

Every benchmark regenerates one table or figure from the paper's
evaluation (§5-§6) at reduced scale.  Reports are printed and also written
to ``benchmarks/results/`` so EXPERIMENTS.md can cite a concrete run.

Scale note: the paper's testbed aligns 223M real reads on 32 Xeon nodes;
we align synthetic reads in pure Python on one machine.  Absolute numbers
differ by construction — every report therefore shows the paper's value,
our measured value, and the *shape* property that must hold.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest

from repro.align.snap import SeedIndex, SnapAligner
from repro.dataflow.backends import BACKEND_CHOICES, make_backend, noop_task
from repro.formats.converters import import_reads
from repro.genome.synthetic import ReadSimulator, synthetic_reference
from repro.storage.base import MemoryStore

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    group = parser.getgroup("persona", "Persona execution backends")
    group.addoption(
        "--backend",
        default="thread",
        choices=BACKEND_CHOICES,
        help="execution backend the benchmark pipelines use "
             "(default: thread)",
    )
    group.addoption(
        "--bench-batch-size",
        type=int,
        default=None,
        help="process-backend payloads per IPC message",
    )
    group.addoption(
        "--bench-workers",
        type=int,
        default=2,
        help="worker count for thread/process benchmark backends",
    )


@pytest.fixture(scope="session")
def bench_backend_kind(request) -> str:
    return request.config.getoption("--backend")


@pytest.fixture(scope="session")
def bench_batch_size(request) -> "int | None":
    return request.config.getoption("--bench-batch-size")


@pytest.fixture(scope="session")
def bench_workers(request) -> int:
    return request.config.getoption("--bench-workers")


@pytest.fixture(scope="session")
def backendize(bench_backend_kind, bench_batch_size):
    """Rewrite an AlignGraphConfig to the backend selected on the CLI."""

    def apply(config):
        return replace(
            config, backend=bench_backend_kind, batch_size=bench_batch_size
        )

    return apply


@pytest.fixture()
def bench_compute_backend(bench_backend_kind, bench_batch_size, bench_workers):
    """A standalone Backend for kernels invoked outside a graph (sort,
    dupmark); None for the serial default so the sequential path runs."""
    if bench_backend_kind == "serial":
        yield None
        return
    backend = make_backend(
        bench_backend_kind,
        workers=bench_workers,
        batch_size=bench_batch_size,
    )
    # Warm the worker pool so one-time startup cost (fork + shared-state
    # pickling) stays out of every benchmark's timed region.
    backend.run_chunk(noop_task, [None])
    yield backend
    backend.shutdown()

BENCH_GENOME = 150_000
BENCH_READS = 4_000
BENCH_CHUNK = 400
READ_LENGTH = 101


@pytest.fixture(scope="session")
def bench_reference():
    return synthetic_reference(BENCH_GENOME, num_contigs=2, seed=7001)


@pytest.fixture(scope="session")
def bench_reads(bench_reference):
    simulator = ReadSimulator(
        bench_reference, read_length=READ_LENGTH,
        duplicate_fraction=0.12, seed=7002,
    )
    reads, _origins = simulator.simulate(BENCH_READS)
    return reads


@pytest.fixture(scope="session")
def bench_aligner(bench_reference):
    return SnapAligner(SeedIndex(bench_reference, seed_length=16, max_hits=32))


@pytest.fixture()
def bench_dataset(bench_reads, bench_reference):
    return import_reads(
        bench_reads, "bench", MemoryStore(), chunk_size=BENCH_CHUNK,
        reference=bench_reference.manifest_entry(),
    )


@pytest.fixture(scope="session")
def single_thread_rate(bench_aligner, bench_reads):
    """Calibration: measured single-thread alignment rate (bases/s).

    The storage models express bandwidths as multiples of this rate so
    the paper's compute-to-I/O regime is reproduced regardless of how
    fast the host machine runs Python.
    """
    import time

    sample = bench_reads[:300]
    start = time.monotonic()
    for read in sample:
        bench_aligner.align_read(read.bases)
    elapsed = time.monotonic() - start
    return len(sample) * READ_LENGTH / elapsed


#: Machine-readable benchmark results land at the repo root as
#: ``BENCH_<name>.json`` (CI uploads them as artifacts; trend tooling
#: reads them without parsing the human report).
REPO_ROOT = Path(__file__).resolve().parent.parent


class Report:
    """Collects lines, prints them, and persists them under results/.

    Alongside the human-readable ``benchmarks/results/<name>.txt``,
    ``finish()`` writes a machine-readable ``BENCH_<name>.json`` at the
    repo root: every ``row``/``check`` is recorded structurally, and
    drivers can attach numeric series via :meth:`metric`.
    """

    def __init__(self, name: str, title: str):
        self.name = name
        self.title = title
        self.lines = [title, "=" * len(title)]
        self.metrics: dict = {}
        self.rows: list[dict] = []
        self.checks: list[dict] = []
        self.gates: list[dict] = []

    def add(self, line: str = "") -> None:
        self.lines.append(line)

    def metric(self, key: str, value) -> None:
        """Record one machine-readable metric (number, string, list)."""
        self.metrics[key] = value

    def row(self, label: str, paper, measured, note: str = "") -> None:
        self.add(f"{label:<42} paper: {paper:<16} measured: {measured:<16} {note}")
        self.rows.append(
            {"label": label, "paper": str(paper), "measured": str(measured),
             "note": note}
        )

    def check(self, description: str, holds: bool) -> None:
        marker = "HOLDS" if holds else "VIOLATED"
        self.add(f"  [{marker}] {description}")
        self.checks.append({"description": description, "holds": bool(holds)})
        assert holds, f"shape violated: {description}"

    def gate(self, name: str, threshold: float, measured: float,
             armed: bool, note: str = "") -> None:
        """A numeric speedup gate, recorded structurally either way.

        ``armed=False`` (e.g. too few CPUs for a timing assertion)
        records the measurement without asserting; the JSON still
        carries threshold, measured value, and arming state, so
        ``compare_bench.py`` can surface drift between what a gate
        states and what a host actually measured.
        """
        holds = bool(measured >= threshold)
        self.gates.append({
            "name": name, "threshold": float(threshold),
            "measured": float(measured), "armed": bool(armed),
            "holds": holds,
        })
        if armed:
            marker = "HOLDS" if holds else "VIOLATED"
            self.add(f"  [{marker}] gate {name}: measured {measured:.2f} "
                     f"vs threshold {threshold:g}")
            assert holds, (
                f"gate violated: {name}: {measured:.3f} < {threshold:g}"
            )
        else:
            suffix = f" — {note}" if note else ""
            self.add(f"  [UNARMED] gate {name}: measured {measured:.2f} "
                     f"vs threshold {threshold:g}{suffix}")

    def finish(self) -> str:
        import json

        text = "\n".join(self.lines) + "\n"
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{self.name}.txt").write_text(text)
        payload = {
            "benchmark": self.name,
            "title": self.title,
            "metrics": self.metrics,
            "rows": self.rows,
            "checks": self.checks,
            "gates": self.gates,
        }
        (REPO_ROOT / f"BENCH_{self.name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print("\n" + text)
        return text


@pytest.fixture()
def report(request):
    def factory(name: str, title: str) -> Report:
        return Report(name, title)

    return factory
