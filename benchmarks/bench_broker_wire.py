"""Broker wire benchmark — same-host shm handoff vs TCP copy path.

The tentpole claim of the zero-copy broker plane: when a worker shares
the broker's host (the common placed-run topology — one broker, several
worker processes, one machine per placement group), payload segments at
or above the shm threshold cross as ~100-byte pool descriptors instead
of socket bytes.  The copy path moves every payload byte through the
loopback socket twice (publish in, pull out); the handoff path moves it
through ``/dev/shm`` slabs with one memcpy per side.  Same payloads,
byte-identical deliveries, >= 1.5x end-to-end throughput on real
multi-core hardware.

Conventions follow the zero-copy backend bench: the speedup assertion
arms only on hosts with >= 2 CPUs; the equivalence and /dev/shm leak
checks always arm.

Run:  pytest benchmarks/bench_broker_wire.py --benchmark-json=BENCH_broker_wire.json
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.cluster.broker import Broker, BrokerServer, TcpBrokerClient
from repro.dataflow import shm
from repro.dataflow.queues import PUBLISH_OK, PULL_OK

#: Payload shape: one 4 MiB column blob per chunk — the size class a
#: stage-boundary work item ships once bases/qual/results frames are
#: packed (scaled-up test chunks; real AGD chunks are the same order).
PAYLOAD_BYTES = 4 << 20
CHUNKS = 24
ROUNDS = 3
EDGE = "xfer"


def _transfer(server: BrokerServer, payloads) -> "tuple[float, list]":
    """One full edge pass: publish every payload, pull + ack every
    delivery.  Returns (wall seconds, pulled payloads in order)."""
    producer = TcpBrokerClient(*server.address)
    consumer = TcpBrokerClient(*server.address)
    producer.attach_producer(EDGE)
    try:
        start = time.monotonic()
        for index, payload in enumerate(payloads):
            status = producer.publish(EDGE, f"c-{index}", payload,
                                      timeout=30.0)
            assert status == PUBLISH_OK, status
        pulled = []
        while len(pulled) < len(payloads):
            status, tag, _key, payload = consumer.pull(EDGE, timeout=5.0)
            assert status == PULL_OK, status
            consumer.ack(EDGE, tag)
            pulled.append(bytes(payload))
        wall = time.monotonic() - start
    finally:
        producer.close()
        consumer.close()
    return wall, pulled


def _run_mode(shm_mode: bool, payloads) -> "tuple[float, list, dict]":
    best = None
    pulled = None
    stat = None
    for _ in range(ROUNDS):
        broker = Broker()
        broker.create_edge(EDGE, capacity=len(payloads), producers=1)
        server = BrokerServer(broker, shm=shm_mode).start()
        try:
            wall, out = _transfer(server, payloads)
            stat = broker.stats()[EDGE]
        finally:
            server.stop()
        if best is None or wall < best:
            best, pulled = wall, out
    return best, pulled, stat


@pytest.mark.skipif(not shm.shm_available(),
                    reason="POSIX shared memory unavailable")
def test_broker_wire_shm_throughput(report):
    cpus = os.cpu_count() or 1
    rng = np.random.default_rng(1717)
    payloads = [
        rng.integers(0, 256, size=PAYLOAD_BYTES, dtype=np.uint8).tobytes()
        for _ in range(CHUNKS)
    ]
    volume = sum(len(p) for p in payloads)

    before = set(shm.list_segments("psna-"))
    copy_wall, copy_out, copy_stat = _run_mode(False, payloads)
    shm_wall, shm_out, shm_stat = _run_mode(True, payloads)
    leaked = sorted(set(shm.list_segments("psna-")) - before)

    speedup = copy_wall / shm_wall if shm_wall else 0.0
    rep = report("broker_wire",
                 "Zero-copy broker plane — same-host shm handoff vs "
                 "TCP copy path")
    rep.add(f"host CPUs: {cpus}; payloads: {CHUNKS} x "
            f"{PAYLOAD_BYTES / 1e6:.0f} MB ({volume / 1e6:.0f} MB/round, "
            f"publish + pull across a loopback broker)")
    rep.row("TCP copy path", "2 socket crossings",
            f"{copy_wall:.3f} s ({volume / copy_wall / 1e6:.0f} MB/s)")
    rep.row("same-host shm handoff", ">= 1.5x",
            f"{shm_wall:.3f} s ({volume / shm_wall / 1e6:.0f} MB/s, "
            f"{speedup:.2f}x)")
    rep.metric("copy_wall_seconds", copy_wall)
    rep.metric("shm_wall_seconds", shm_wall)
    rep.metric("speedup", speedup)
    rep.metric("payload_bytes_per_round", volume)
    rep.metric("shm_handoff_bytes", shm_stat["shm_bytes"])
    rep.metric("shm_wire_bytes", shm_stat["wire_bytes"])
    rep.metric("copy_wire_bytes", copy_stat["wire_bytes"])
    rep.add()
    rep.add("shape checks:")
    rep.check("shm and copy deliveries byte-identical to the inputs",
              shm_out == payloads and copy_out == payloads)
    rep.check("copy path handed off nothing",
              copy_stat["shm_handoffs"] == 0)
    rep.check("shm path handed off every payload in both directions",
              shm_stat["shm_handoffs"] == 2 * CHUNKS)
    rep.check("shm path kept payload bytes off the socket",
              shm_stat["wire_bytes"] < copy_stat["wire_bytes"] / 100)
    rep.check("no /dev/shm segments leaked", not leaked)
    if cpus >= 2:
        rep.check(
            f"shm handoff beats the copy path by >= 1.5x on "
            f"{PAYLOAD_BYTES >> 20} MiB payloads ({cpus} CPUs)",
            speedup >= 1.5,
        )
    else:
        rep.add(f"  [SKIPPED] >= 1.5x speedup gate needs >= 2 CPUs "
                f"(host has {cpus}); measured {speedup:.2f}x, "
                f"reported only")
    rep.finish()
