"""Broker wire benchmark — same-host shm handoff vs TCP copy path.

The tentpole claim of the zero-copy broker plane: when a worker shares
the broker's host (the common placed-run topology — one broker, several
worker processes, one machine per placement group), payload segments at
or above the shm threshold cross as ~100-byte pool descriptors instead
of socket bytes.  Three rows:

``TCP copy``
    every payload byte crosses the loopback socket twice (publish in,
    pull out).
``shm handoff``
    descriptors cross the socket; the consumer still materializes each
    segment with one ``/dev/shm`` read per pull.
``raw shm (views)``
    the consumer maps each segment and consumes it as a read-only
    ``memoryview`` — zero pull-side copies; the publish write and the
    final consumer write are the only memcpys end to end.

Same payloads, byte-identical deliveries.  Gates (armed on >= 2 CPUs,
recorded in the JSON either way): shm handoff >= 1.5x over TCP copy,
raw shm >= 2x over TCP copy.  The equivalence and /dev/shm leak checks
always arm.

Run:  pytest benchmarks/bench_broker_wire.py --benchmark-json=BENCH_broker_wire.json
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.cluster.broker import Broker, BrokerServer, TcpBrokerClient
from repro.dataflow import shm
from repro.dataflow.queues import PUBLISH_OK, PULL_OK

#: Payload shape: one 4 MiB column blob per chunk — the size class a
#: stage-boundary work item ships once bases/qual/results frames are
#: packed (scaled-up test chunks; real AGD chunks are the same order).
PAYLOAD_BYTES = 4 << 20
CHUNKS = 24
ROUNDS = 3
EDGE = "xfer"


def _transfer(server: BrokerServer, payloads,
              views: bool = False) -> "tuple[float, list]":
    """One full edge pass: publish every payload, pull + ack every
    delivery.  Returns (wall seconds, pulled payloads in order).

    ``views=True`` measures the raw decode plane: pulls deliver
    read-only memoryviews of the mapped segments and the timed loop
    never copies them (materialization for the byte-identity check
    happens after the clock stops — exactly what a view-consuming
    kernel avoids paying).
    """
    producer = TcpBrokerClient(*server.address)
    consumer = TcpBrokerClient(*server.address, views=views)
    producer.attach_producer(EDGE)
    try:
        start = time.monotonic()
        for index, payload in enumerate(payloads):
            status = producer.publish(EDGE, f"c-{index}", payload,
                                      timeout=30.0)
            assert status == PUBLISH_OK, status
        pulled = []
        while len(pulled) < len(payloads):
            status, tag, _key, payload = consumer.pull(EDGE, timeout=5.0)
            assert status == PULL_OK, status
            consumer.ack(EDGE, tag)
            pulled.append(payload if views else bytes(payload))
        wall = time.monotonic() - start
        if views:
            # Outside the timed region: materialize for the identity
            # check, dropping the views so the mappings can release.
            pulled = [bytes(p) for p in pulled]
    finally:
        producer.close()
        consumer.close()
    return wall, pulled


def _run_mode(shm_mode: bool, payloads,
              views: bool = False) -> "tuple[float, list, dict]":
    best = None
    pulled = None
    stat = None
    for _ in range(ROUNDS):
        broker = Broker()
        broker.create_edge(EDGE, capacity=len(payloads), producers=1)
        server = BrokerServer(broker, shm=shm_mode).start()
        try:
            wall, out = _transfer(server, payloads, views=views)
            stat = broker.stats()[EDGE]
        finally:
            server.stop()
        if best is None or wall < best:
            best, pulled = wall, out
    return best, pulled, stat


@pytest.mark.skipif(not shm.shm_available(),
                    reason="POSIX shared memory unavailable")
def test_broker_wire_shm_throughput(report):
    cpus = os.cpu_count() or 1
    rng = np.random.default_rng(1717)
    payloads = [
        rng.integers(0, 256, size=PAYLOAD_BYTES, dtype=np.uint8).tobytes()
        for _ in range(CHUNKS)
    ]
    volume = sum(len(p) for p in payloads)

    before = set(shm.list_segments("psna-"))
    copy_wall, copy_out, copy_stat = _run_mode(False, payloads)
    shm_wall, shm_out, shm_stat = _run_mode(True, payloads)
    raw_wall, raw_out, raw_stat = _run_mode(True, payloads, views=True)
    leaked = sorted(set(shm.list_segments("psna-")) - before)

    speedup = copy_wall / shm_wall if shm_wall else 0.0
    raw_speedup = copy_wall / raw_wall if raw_wall else 0.0
    rep = report("broker_wire",
                 "Zero-copy broker plane — same-host shm handoff vs "
                 "TCP copy path")
    rep.add(f"host CPUs: {cpus}; payloads: {CHUNKS} x "
            f"{PAYLOAD_BYTES / 1e6:.0f} MB ({volume / 1e6:.0f} MB/round, "
            f"publish + pull across a loopback broker)")
    rep.row("TCP copy path", "2 socket crossings",
            f"{copy_wall:.3f} s ({volume / copy_wall / 1e6:.0f} MB/s)")
    rep.row("same-host shm handoff", ">= 1.5x",
            f"{shm_wall:.3f} s ({volume / shm_wall / 1e6:.0f} MB/s, "
            f"{speedup:.2f}x)")
    rep.row("raw shm (zero-copy views)", ">= 2x",
            f"{raw_wall:.3f} s ({volume / raw_wall / 1e6:.0f} MB/s, "
            f"{raw_speedup:.2f}x)")
    rep.metric("cpu_count", cpus)
    rep.metric("copy_wall_seconds", copy_wall)
    rep.metric("shm_wall_seconds", shm_wall)
    rep.metric("raw_wall_seconds", raw_wall)
    rep.metric("speedup", speedup)
    rep.metric("raw_speedup", raw_speedup)
    rep.metric("payload_bytes_per_round", volume)
    rep.metric("shm_handoff_bytes", shm_stat["shm_bytes"])
    rep.metric("shm_wire_bytes", shm_stat["wire_bytes"])
    rep.metric("copy_wire_bytes", copy_stat["wire_bytes"])
    rep.metric("raw_segments", raw_stat["raw_segments"])
    rep.metric("raw_decode_copies", raw_stat["decode_copies"])
    rep.metric("raw_decode_view_bytes", raw_stat["decode_view_bytes"])
    rep.add()
    rep.add("shape checks:")
    rep.check("shm, raw, and copy deliveries byte-identical to the inputs",
              shm_out == payloads and copy_out == payloads
              and raw_out == payloads)
    rep.check("copy path handed off nothing",
              copy_stat["shm_handoffs"] == 0)
    rep.check("shm path handed off every payload in both directions",
              shm_stat["shm_handoffs"] == 2 * CHUNKS)
    rep.check("shm path kept payload bytes off the socket",
              shm_stat["wire_bytes"] < copy_stat["wire_bytes"] / 100)
    rep.check("raw path consumed every delivery as a zero-copy view",
              raw_stat["raw_segments"] == CHUNKS
              and raw_stat["decode_copies"] == 0
              and raw_stat["decode_view_bytes"] == volume)
    rep.check("no /dev/shm segments leaked", not leaked)
    armed = cpus >= 2
    note = f"needs >= 2 CPUs, host has {cpus}" if not armed else ""
    rep.gate("shm_handoff_speedup", 1.5, speedup, armed, note=note)
    rep.gate("raw_shm_speedup", 2.0, raw_speedup, armed, note=note)
    rep.finish()
