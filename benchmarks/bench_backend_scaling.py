"""Backend scaling smoke — serial vs process on the reduced Table 1 run.

The tentpole claim of the pluggable-backend work: with compute kernels
expressed as picklable task payloads, a ``ProcessBackend`` with >= 2
workers beats ``SerialBackend`` wall-clock on real multi-core hardware —
the first configuration of this reproduction where Python *compute*
(not just I/O overlap) scales past one core.

This driver is deliberately small (it runs in CI on every push):

* same reduced synthetic workload as the Table 1 benchmark, alignment
  compute only (in-memory stores, no disk models);
* the three backends must produce byte-identical alignment results;
* the speedup assertion only arms on hosts with >= 2 CPUs — on a
  single-core runner there is no physical parallelism to measure, so
  the check is reported but not enforced (slow-runner tolerance).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.pipelines import align_dataset
from repro.core.subgraphs import AlignGraphConfig
from repro.formats.converters import import_reads
from repro.storage.base import MemoryStore

WORKERS = 2
SUBCHUNK = 250
CHUNK = 1000


@pytest.fixture(scope="module")
def smoke_world(bench_reads, bench_reference):
    # 3x the Table 1 read set: enough compute per run that the process
    # pool's one-time startup cost cannot mask a real 2-worker speedup.
    reads = list(bench_reads) * 3

    def fresh_dataset():
        return import_reads(
            reads, "backend-smoke", MemoryStore(), chunk_size=CHUNK,
            reference=bench_reference.manifest_entry(),
        )

    return fresh_dataset


def _run(fresh_dataset, aligner, backend_kind, workers, batch_size=None,
         rounds=1):
    """Align the workload; with rounds > 1, keep the best wall-clock.

    Best-of-N damps scheduling noise on oversubscribed CI runners so
    the hard process-vs-serial assertion measures the backends, not a
    neighbor's workload.
    """
    config = AlignGraphConfig(
        executor_threads=workers,
        aligner_nodes=2,
        reader_nodes=1,
        parser_nodes=1,
        writer_nodes=1,
        subchunk_size=SUBCHUNK,
        backend=backend_kind,
        batch_size=batch_size,
    )
    best_wall, results = None, None
    for _ in range(rounds):
        dataset = fresh_dataset()
        start = time.monotonic()
        align_dataset(dataset, aligner, config=config)
        wall = time.monotonic() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
            results = dataset.read_column("results")
    return best_wall, results


def test_backend_scaling_smoke(
    benchmark, smoke_world, bench_aligner, bench_batch_size, report,
):
    cpus = os.cpu_count() or 1
    timed_rounds = 2 if cpus >= 2 else 1  # best-of-2 when asserting
    serial_wall, serial_results = _run(
        smoke_world, bench_aligner, "serial", 1, rounds=timed_rounds
    )
    thread_wall, thread_results = _run(
        smoke_world, bench_aligner, "thread", WORKERS
    )
    process_wall, process_results = _run(
        smoke_world, bench_aligner, "process", WORKERS,
        batch_size=bench_batch_size, rounds=timed_rounds,
    )

    rep = report("backend_scaling",
                 "Backend scaling smoke — serial vs thread vs process")
    rep.add(f"host CPUs: {cpus}; workers: {WORKERS}; "
            f"reads: {len(serial_results)}")
    rep.row("serial backend", "baseline", f"{serial_wall:.2f} s")
    rep.row("thread backend", "~1x (GIL)",
            f"{thread_wall:.2f} s ({serial_wall / thread_wall:.2f}x)")
    rep.row("process backend", ">1x on multi-core",
            f"{process_wall:.2f} s ({serial_wall / process_wall:.2f}x)")
    rep.add()
    rep.add("shape checks:")
    rep.check("serial and thread backends produce identical results",
              serial_results == thread_results)
    rep.check("serial and process backends produce identical results",
              serial_results == process_results)
    if cpus >= 2:
        rep.check(
            f"process backend beats serial wall-clock "
            f"({WORKERS} workers, {cpus} CPUs)",
            process_wall < serial_wall,
        )
    else:
        rep.add("  [SKIPPED] process-vs-serial speedup needs >= 2 CPUs "
                f"(host has {cpus}); no physical parallelism to measure")
    rep.finish()

    benchmark.pedantic(
        lambda: _run(smoke_world, bench_aligner, "serial", 1),
        rounds=1, iterations=1,
    )
