"""Scalar-reference vs columnar-vectorized kernel microbenchmark.

The columnar fast path (repro.core.columnar) rewrites the three hottest
per-record loops — pileup accumulation, sort-key extraction + ordering,
and duplicate-signature extraction + scanning — as numpy array programs
over AGD columns.  This benchmark times each kernel pair on the same
aligned workload and asserts:

* **byte-identical outputs**: same VCF records, same sorted dataset
  bytes, same duplicate marks and stats;
* **the speedup shape**: the vectorized pileup must be at least 5x
  faster than the scalar dict-of-Counter reference (CI's perf-smoke job
  runs this file, so a silent fallback to the scalar path fails the
  build).

Related work anchors the expectation: BioWorkbench attributes its wins
to eliminating interpreter-bound inner loops, and Argyropoulos 2024
reports order-of-magnitude gains from array-language vectorization of
exactly these per-base genomics loops.
"""

from __future__ import annotations

import time

import pytest

from repro.core.columnar import call_from_pileup_arrays
from repro.core.dupmark import DupmarkStats, mark_duplicates
from repro.core.pipelines import align_dataset
from repro.core.sort import SortConfig, sort_dataset
from repro.core.subgraphs import AlignGraphConfig
from repro.core.varcall import (
    VarCallConfig,
    call_from_pileup,
    pileup_dataset,
    pileup_dataset_arrays,
)
from repro.dataflow.backends import SerialBackend
from repro.formats.converters import import_reads
from repro.storage.base import MemoryStore


@pytest.fixture(scope="module")
def aligned_world(bench_reads, bench_reference, bench_aligner):
    dataset = import_reads(
        bench_reads, "vecbench", MemoryStore(), chunk_size=400,
        reference=bench_reference.manifest_entry(),
    )
    align_dataset(dataset, bench_aligner,
                  config=AlignGraphConfig(executor_threads=1))
    return dataset


def _timed(fn, repeats: int = 1):
    best = None
    result = None
    for _ in range(repeats):
        start = time.monotonic()
        result = fn()
        elapsed = time.monotonic() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def test_vectorized_pileup_speedup(benchmark, aligned_world, bench_reference,
                                   report):
    dataset = aligned_world
    config = VarCallConfig()

    scalar_columns, scalar_s = _timed(
        lambda: pileup_dataset(dataset, config), repeats=3)
    vector_pile, vector_s = _timed(
        lambda: pileup_dataset_arrays(dataset, config), repeats=3)

    scalar_variants = call_from_pileup(scalar_columns, bench_reference, config)
    vector_variants = call_from_pileup_arrays(vector_pile, bench_reference,
                                              config)
    assert vector_variants == scalar_variants, \
        "vectorized pileup changed the called variants"

    speedup = scalar_s / vector_s if vector_s else float("inf")
    rep = report("vectorized_kernels_pileup",
                 "Vectorized pileup vs scalar reference")
    rep.row("scalar pileup (dict-of-Counter)", "baseline",
            f"{scalar_s * 1e3:.1f} ms")
    rep.row("vectorized pileup (np.add-style)", ">= 5x faster",
            f"{vector_s * 1e3:.1f} ms ({speedup:.1f}x)")
    rep.metric("scalar_seconds", scalar_s)
    rep.metric("vectorized_seconds", vector_s)
    rep.metric("speedup", speedup)
    rep.metric("variants_called", len(vector_variants))
    rep.add()
    rep.add("shape checks:")
    rep.check("identical VCF records from both paths",
              vector_variants == scalar_variants)
    rep.check("vectorized pileup at least 5x faster than scalar",
              speedup >= 5.0)
    rep.finish()

    benchmark.pedantic(lambda: pileup_dataset_arrays(dataset, config),
                       rounds=1, iterations=1)


def test_vectorized_sort_and_partitioned_merge(benchmark, aligned_world,
                                               report):
    dataset = aligned_world

    scalar_store = MemoryStore()
    _, scalar_s = _timed(lambda: sort_dataset(
        dataset, scalar_store,
        SortConfig(chunks_per_superchunk=4, vectorized=False),
    ), repeats=3)
    vector_store = MemoryStore()
    _, vector_s = _timed(lambda: sort_dataset(
        dataset, vector_store,
        SortConfig(chunks_per_superchunk=4, vectorized=True),
    ), repeats=3)
    # Partitioned phase-2 merge: >= 2 merge kernels through the backend.
    with SerialBackend() as backend:
        partitioned_store = MemoryStore()
        _, partitioned_s = _timed(lambda: sort_dataset(
            dataset, partitioned_store,
            SortConfig(chunks_per_superchunk=4, merge_partitions=4),
            backend=backend,
        ), repeats=3)

    scalar_blobs = {k: scalar_store.get(k) for k in scalar_store.keys()}
    vector_blobs = {k: vector_store.get(k) for k in vector_store.keys()}
    part_blobs = {k: partitioned_store.get(k) for k in partitioned_store.keys()}
    assert vector_blobs == scalar_blobs, \
        "vectorized sort changed the output bytes"
    assert part_blobs == scalar_blobs, \
        "partitioned merge changed the output bytes"

    speedup = scalar_s / vector_s if vector_s else float("inf")
    rep = report("vectorized_kernels_sort",
                 "Vectorized sort keys + partitioned superchunk merge")
    rep.row("scalar sort (tuple-key list.sort)", "baseline",
            f"{scalar_s * 1e3:.1f} ms")
    rep.row("vectorized sort (packed-key argsort)", "faster",
            f"{vector_s * 1e3:.1f} ms ({speedup:.2f}x)")
    rep.row("4-partition merge (backend kernels)", "identical bytes",
            f"{partitioned_s * 1e3:.1f} ms")
    rep.metric("scalar_seconds", scalar_s)
    rep.metric("vectorized_seconds", vector_s)
    rep.metric("partitioned_seconds", partitioned_s)
    rep.metric("speedup", speedup)
    rep.add()
    rep.add("shape checks:")
    rep.check("vectorized sort output byte-identical to scalar",
              vector_blobs == scalar_blobs)
    rep.check("partitioned merge output byte-identical to single-kernel",
              part_blobs == scalar_blobs)
    # Loose bound: the sort fast path is a modest win (the decode and
    # re-encode around it dominate), so only guard against a real
    # regression — tight margins on shared CI runners are flaky.
    rep.check("vectorized sort within 1.5x of the scalar reference",
              vector_s <= scalar_s * 1.5)
    rep.finish()

    benchmark.pedantic(
        lambda: sort_dataset(dataset, MemoryStore(),
                             SortConfig(chunks_per_superchunk=4)),
        rounds=1, iterations=1,
    )


def test_vectorized_dupmark_speedup(benchmark, aligned_world, report):
    def fresh_copy():
        dataset = aligned_world
        store = MemoryStore()
        for key in dataset.store.keys():
            store.put(key, dataset.store.get(key))
        from repro.agd.dataset import AGDDataset
        from repro.agd.manifest import Manifest

        manifest = Manifest.from_json(dataset.manifest.to_json())
        return AGDDataset(manifest, store)

    # Marking is idempotent byte-wise (re-marking an already-marked
    # dataset flips no flags), so best-of-N on the same copy is sound.
    scalar_ds = fresh_copy()
    scalar_stats = DupmarkStats()
    _, scalar_s = _timed(
        lambda: mark_duplicates(scalar_ds, DupmarkStats(), vectorized=False),
        repeats=2)
    mark_duplicates(scalar_ds, scalar_stats, vectorized=False)
    vector_ds = fresh_copy()
    vector_stats = DupmarkStats()
    _, vector_s = _timed(
        lambda: mark_duplicates(vector_ds, DupmarkStats(), vectorized=True),
        repeats=2)
    mark_duplicates(vector_ds, vector_stats, vectorized=True)

    scalar_blobs = {k: scalar_ds.store.get(k) for k in scalar_ds.store.keys()}
    vector_blobs = {k: vector_ds.store.get(k) for k in vector_ds.store.keys()}
    assert vector_blobs == scalar_blobs, \
        "vectorized dupmark changed the marked dataset bytes"
    assert (vector_stats.records, vector_stats.duplicates_marked,
            vector_stats.unmapped) == \
        (scalar_stats.records, scalar_stats.duplicates_marked,
         scalar_stats.unmapped)

    speedup = scalar_s / vector_s if vector_s else float("inf")
    rep = report("vectorized_kernels_dupmark",
                 "Vectorized duplicate marking vs scalar reference")
    rep.row("scalar dupmark (tuple signatures)", "baseline",
            f"{scalar_s * 1e3:.1f} ms")
    rep.row("vectorized dupmark (np.unique scan)", "faster",
            f"{vector_s * 1e3:.1f} ms ({speedup:.2f}x)")
    rep.metric("scalar_seconds", scalar_s)
    rep.metric("vectorized_seconds", vector_s)
    rep.metric("speedup", speedup)
    rep.metric("duplicates_marked", vector_stats.duplicates_marked)
    rep.add()
    rep.add("shape checks:")
    rep.check("identical duplicate marks and stats",
              vector_blobs == scalar_blobs)
    rep.check("vectorized dupmark within 1.5x of the scalar reference",
              vector_s <= scalar_s * 1.5)
    rep.finish()

    benchmark.pedantic(
        lambda: mark_duplicates(fresh_copy(), DupmarkStats()),
        rounds=1, iterations=1,
    )
