"""Ablation — AGD chunk size (§3, §5.2).

The paper: "The choice of chunk size is an important factor to maximize
I/O performance.  Larger chunk sizes have better compression ratios and
lower overhead due to large contiguous reads from local storage.
However, smaller chunk sizes decrease the I/O and decompression latency
during which processing cores may stand idle."  The evaluation fixes
chunk size at 100,000 reads (~3.5 MB per column, §5.2).

This ablation sweeps chunk size and measures the two opposing quantities:
stored size (compression win of big chunks) and per-chunk decode latency
(responsiveness win of small chunks).
"""

from __future__ import annotations

import time

from repro.formats.converters import import_reads
from repro.storage.base import MemoryStore


def test_ablation_chunk_size(benchmark, bench_reads, bench_reference, report):
    sizes = [25, 100, 400, 2000]
    rows = []
    for chunk_size in sizes:
        dataset = import_reads(
            bench_reads, f"ab{chunk_size}", MemoryStore(),
            chunk_size=chunk_size,
            reference=bench_reference.manifest_entry(),
        )
        stored = dataset.total_bytes()
        start = time.monotonic()
        for i in range(dataset.num_chunks):
            dataset.read_chunk("bases", i)
        decode_wall = time.monotonic() - start
        per_chunk_latency = decode_wall / dataset.num_chunks
        rows.append({
            "chunk_size": chunk_size,
            "chunks": dataset.num_chunks,
            "stored_bytes": stored,
            "per_chunk_ms": per_chunk_latency * 1e3,
            "decode_wall": decode_wall,
        })

    rep = report("ablation_chunk_size", "Ablation — AGD chunk size (§3)")
    rep.add(f"{'reads/chunk':>12} {'chunks':>7} {'stored KB':>10} "
            f"{'chunk latency':>14} {'full decode':>12}")
    for row in rows:
        rep.add(
            f"{row['chunk_size']:>12} {row['chunks']:>7} "
            f"{row['stored_bytes'] / 1e3:>10.0f} "
            f"{row['per_chunk_ms']:>12.2f}ms "
            f"{row['decode_wall'] * 1e3:>10.0f}ms"
        )
    smallest, largest = rows[0], rows[-1]
    rep.add()
    rep.add("shape checks:")
    rep.check(
        "larger chunks compress better (smaller stored size)",
        largest["stored_bytes"] < smallest["stored_bytes"],
    )
    rep.check(
        "smaller chunks have lower per-chunk latency",
        smallest["per_chunk_ms"] < largest["per_chunk_ms"],
    )
    rep.check(
        "larger chunks have lower total decode overhead",
        largest["decode_wall"] < smallest["decode_wall"] * 1.2,
    )
    rep.finish()

    benchmark.pedantic(
        lambda: import_reads(
            bench_reads, "bench", MemoryStore(), chunk_size=400,
            reference=bench_reference.manifest_entry(),
        ),
        rounds=1, iterations=1,
    )
