#!/usr/bin/env python
"""Compare BENCH_*.json results against committed baselines.

CI runs this after every benchmark job: each freshly written
``BENCH_<name>.json`` is diffed against ``benchmarks/baselines/<same
name>.json`` and any metric that regressed by more than the threshold
(20% by default) is surfaced as a GitHub ``::warning::`` annotation —
the job stays green, because shared CI runners are far too noisy to
gate merges on wall-clock numbers.  ``--strict`` turns regressions into
a non-zero exit for local use; ``--bless`` rewrites the baselines from
the current results.

Two JSON shapes are understood:

* the repo's own ``Report`` payload — ``{"benchmark": ..., "metrics":
  {name: number, ...}}``; metric direction is inferred from the name
  (``*_seconds``/``*_bytes`` are lower-better, ``*_per_second``/
  ``*speedup*`` higher-better, anything else is ignored),
* pytest-benchmark exports — ``{"benchmarks": [{"name": ...,
  "stats": {"mean": seconds}}]}``; mean runtime is lower-better.

Missing baselines are reported and skipped, never fatal: a new
benchmark lands green and gets blessed in a follow-up.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

#: Metric-name fragments that decide comparison direction.
LOWER_IS_BETTER = ("seconds", "bytes", "latency")
HIGHER_IS_BETTER = ("per_second", "speedup", "throughput")


def _metric_direction(name: str) -> "int | None":
    """-1 if lower is better, +1 if higher is better, None if unknown."""
    lowered = name.lower()
    if any(tag in lowered for tag in HIGHER_IS_BETTER):
        return 1
    if any(tag in lowered for tag in LOWER_IS_BETTER):
        return -1
    return None


def extract_metrics(doc: dict) -> "dict[str, tuple[float, int]]":
    """Flatten either JSON shape into ``{metric: (value, direction)}``."""
    out: "dict[str, tuple[float, int]]" = {}
    if "benchmarks" in doc:  # pytest-benchmark export
        for bench in doc.get("benchmarks") or []:
            name = bench.get("name") or bench.get("fullname") or "?"
            mean = (bench.get("stats") or {}).get("mean")
            if isinstance(mean, (int, float)):
                out[f"{name}.mean_seconds"] = (float(mean), -1)
        return out
    for name, value in (doc.get("metrics") or {}).items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        direction = _metric_direction(name)
        if direction is not None:
            out[name] = (float(value), direction)
    return out


def gate_drift(doc: dict, name: str) -> "list[str]":
    """Gate-vs-measured drift messages for one ``Report`` payload.

    A benchmark that states a speedup gate records it structurally
    (threshold, measured, armed).  When the measured value sits below
    the stated threshold — above all on hosts where the assertion was
    *unarmed* and the run stayed green — that drift is surfaced here so
    a stated gate and its committed measurement cannot quietly
    disagree.
    """
    drifts: list[str] = []
    for gate in doc.get("gates") or []:
        try:
            threshold = float(gate["threshold"])
            measured = float(gate["measured"])
        except (KeyError, TypeError, ValueError):
            continue
        if measured >= threshold:
            continue
        armed = "armed" if gate.get("armed") else "unarmed"
        drifts.append(
            f"{name}: gate {gate.get('name', '?')} states >= "
            f"{threshold:g} but measured {measured:.3g} ({armed})"
        )
    return drifts


def compare_file(
    current_path: Path, baseline_dir: Path, threshold: float
) -> "tuple[list[str], list[str], list[str]]":
    """Return (regressions, infos, gate drifts) for one result file."""
    current_doc = json.loads(current_path.read_text())
    drifts = gate_drift(current_doc, current_path.name)
    baseline_path = baseline_dir / current_path.name
    if not baseline_path.is_file():
        return [], [f"{current_path.name}: no baseline (skipped; "
                    f"run --bless to record one)"], drifts
    current = extract_metrics(current_doc)
    baseline = extract_metrics(json.loads(baseline_path.read_text()))
    regressions: list[str] = []
    infos: list[str] = []
    for name, (base_value, direction) in sorted(baseline.items()):
        if name not in current or base_value == 0:
            continue
        value = current[name][0]
        # Positive change = worse, regardless of metric direction.
        change = (value - base_value) / abs(base_value) * -direction
        if change > threshold:
            regressions.append(
                f"{current_path.name}: {name} regressed "
                f"{change * 100:.0f}% ({base_value:.4g} -> {value:.4g})"
            )
        else:
            trend = (f"{change * 100:.0f}% worse, within threshold"
                     if change > 0 else f"{abs(change) * 100:.0f}% better")
            infos.append(
                f"{current_path.name}: {name} {base_value:.4g} -> "
                f"{value:.4g} ({trend})"
            )
    return regressions, infos, drifts


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "results", nargs="*", type=Path,
        help="BENCH_*.json files to compare (default: ./BENCH_*.json)",
    )
    parser.add_argument("--baseline-dir", type=Path, default=BASELINE_DIR)
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="relative regression that triggers a warning (default: 0.20)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on regressions instead of only warning",
    )
    parser.add_argument(
        "--bless", action="store_true",
        help="copy the given results over the committed baselines",
    )
    args = parser.parse_args(argv)

    results = args.results or sorted(Path.cwd().glob("BENCH_*.json"))
    if not results:
        print("no BENCH_*.json results to compare")
        return 0

    if args.bless:
        args.baseline_dir.mkdir(parents=True, exist_ok=True)
        for path in results:
            shutil.copyfile(path, args.baseline_dir / path.name)
            print(f"blessed {path.name} -> {args.baseline_dir}")
        return 0

    all_regressions: list[str] = []
    all_drifts: list[str] = []
    for path in results:
        regressions, infos, drifts = compare_file(
            path, args.baseline_dir, args.threshold
        )
        for line in infos:
            print(line)
        all_regressions.extend(regressions)
        all_drifts.extend(drifts)

    for line in all_regressions:
        # GitHub Actions annotation: visible on the run summary and the
        # PR checks tab without failing the job.
        print(f"::warning title=benchmark regression::{line}")
    for line in all_drifts:
        # Gate drift never fails the job: an unarmed gate (too few
        # CPUs) legitimately records a below-threshold measurement —
        # but it must stay visible, not buried in a green run.
        print(f"::warning title=benchmark gate::{line}")
    if all_regressions:
        print(f"{len(all_regressions)} metric(s) regressed more than "
              f"{args.threshold * 100:.0f}% (warning only)")
        return 1 if args.strict else 0
    print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
