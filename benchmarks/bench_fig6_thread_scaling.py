"""Figure 6 — Throughput scaling across cores (§5.4).

Paper result on a 24-core/48-thread node: SNAP scales near-linearly to 24
threads, gains 32% from the second hyperthread, then *drops* at 48
threads from I/O-scheduling contention; Persona-SNAP shows no drop and
"adds no measurable overhead".  BWA scales to 24 threads then flattens
under memory contention; Persona-BWA scales slightly better.

Pure-Python threads cannot scale compute (GIL), so — per DESIGN.md — this
figure uses the paper's own modeling approach: an analytical scaling
model calibrated with *measured* single-thread kernel rates from our
aligners.  The measured part is real (SNAP vs BWA relative speed, Persona
framework overhead); the multicore shape is modeled.
"""

from __future__ import annotations

import os
import time

from repro.cluster.simulation import ThreadScalingParams, thread_scaling_table
from repro.core.ops import align_subchunk_task
from repro.dataflow.backends import ProcessBackend


def _measure_rate(aligner, reads) -> float:
    start = time.monotonic()
    for read in reads:
        aligner.align_read(read.bases)
    return len(reads) * len(reads[0].bases) / (time.monotonic() - start)


def _measure_process_rate(aligner, reads, workers: int) -> float:
    """Measured (not modeled) multi-core rate via the process backend."""
    backend = ProcessBackend(workers=workers, batch_size=2)
    backend.register_shared("aligner", aligner)
    bases = [read.bases for read in reads]
    payloads = [("aligner", bases[i:i + 50]) for i in range(0, len(bases), 50)]
    try:
        backend.run_chunk(align_subchunk_task, payloads[:1])  # warm the pool
        start = time.monotonic()
        backend.run_chunk(align_subchunk_task, payloads)
        elapsed = time.monotonic() - start
    finally:
        backend.shutdown()
    return len(bases) * len(bases[0]) / elapsed


def test_fig6_thread_scaling(
    benchmark, bench_aligner, bench_reference, bench_reads, report,
):
    from repro.align.bwa import BwaMemAligner, FMIndex

    snap_rate = _measure_rate(bench_aligner, bench_reads[:400])
    bwa_aligner = BwaMemAligner(FMIndex(bench_reference))
    bwa_rate = _measure_rate(bwa_aligner, bench_reads[:80])
    params = ThreadScalingParams(single_thread_rate=snap_rate)
    # The model's BWA base factor comes from the measured ratio.
    measured_bwa_factor = bwa_rate / snap_rate

    rows = thread_scaling_table([1, 6, 12, 18, 24, 30, 36, 42, 47, 48],
                                params)
    rep = report("fig6_thread_scaling",
                 "Figure 6 — Throughput scaling across cores")
    rep.add(f"calibration: SNAP {snap_rate / 1e6:.3f} Mbases/s/thread, "
            f"BWA {bwa_rate / 1e6:.3f} Mbases/s/thread "
            f"(ratio {measured_bwa_factor:.2f}; paper's BWA is likewise "
            f"several-fold slower than SNAP)")
    # Measured (not modeled) multi-core point: the process backend is the
    # one substrate where pure-Python compute actually scales past one
    # core, so record its real speedup on this host alongside the model.
    cpus = os.cpu_count() or 1
    if cpus >= 2:
        measured_workers = min(4, cpus)
        p1 = _measure_process_rate(bench_aligner, bench_reads[:400], 1)
        pn = _measure_process_rate(
            bench_aligner, bench_reads[:400], measured_workers
        )
        rep.add(f"measured process backend: {p1 / 1e6:.3f} Mbases/s @ 1 "
                f"worker, {pn / 1e6:.3f} Mbases/s @ {measured_workers} "
                f"workers ({pn / p1:.2f}x, host has {cpus} CPUs)")
    else:
        rep.add(f"measured process backend: skipped (host has {cpus} CPU; "
                f"no physical parallelism to measure)")
    rep.add()
    header = (f"{'threads':>8} {'SNAP':>10} {'Persona':>10} "
              f"{'BWA':>10} {'PersonaBWA':>11}   (Mbases/s)")
    rep.add(header)
    for row in rows:
        rep.add(
            f"{row['threads']:>8} {row['snap'] / 1e6:>10.2f} "
            f"{row['persona_snap'] / 1e6:>10.2f} "
            f"{row['bwa'] / 1e6:>10.2f} {row['persona_bwa'] / 1e6:>11.2f}"
        )
    by_threads = {row["threads"]: row for row in rows}
    rep.add()
    rep.add("shape checks:")
    rep.check(
        "near-linear SNAP speedup to 24 threads (>=23x)",
        by_threads[24]["snap"] / by_threads[1]["snap"] >= 23,
    )
    rep.check(
        "second hyperthread adds ~32% (§5.4)",
        abs(by_threads[48]["persona_snap"] / by_threads[24]["persona_snap"]
            - 1.32) < 0.02,
    )
    rep.check(
        "standalone SNAP drops at 48 threads",
        by_threads[48]["snap"] < by_threads[47]["snap"],
    )
    rep.check(
        "Persona SNAP does not drop at 48 threads",
        by_threads[48]["persona_snap"] >= by_threads[47]["persona_snap"],
    )
    rep.check(
        "Persona overhead <= 2% at 24 threads",
        by_threads[24]["persona_snap"] / by_threads[24]["snap"] > 0.98,
    )
    rep.check(
        "BWA flattens beyond 24 threads (<15% gain 24->48)",
        by_threads[48]["bwa"] < 1.15 * by_threads[24]["bwa"],
    )
    rep.check(
        "Persona BWA beats standalone BWA at 48 threads",
        by_threads[48]["persona_bwa"] > by_threads[48]["bwa"],
    )
    rep.check(
        "measured BWA kernel slower than SNAP kernel",
        measured_bwa_factor < 1.0,
    )
    rep.finish()

    benchmark.pedantic(
        lambda: thread_scaling_table(list(range(1, 49)), params),
        rounds=3, iterations=1,
    )
