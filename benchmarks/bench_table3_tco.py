"""Table 3 — Cluster TCO and alignment costs (§6.1).

Paper result:

    Compute Server   $8,450 x 60  = $507K
    Storage server   $7,575 x  7  = $53K
    Fabric ports     $792   x 67  = $53K
    Total                          $613K
    TCO(5yr)                       $943K
    Cost/Alignment (100% util)     6.07 cents
    Storage cost per genome        $8.83
    Glacier (5 yr, cold)           $6.72
    Single server                  4.1 cents/alignment

The TCO model is pure arithmetic over the paper's unit costs, so this is
an exact reproduction, not a calibrated simulation.
"""

from __future__ import annotations

from repro.cluster.tco import (
    CostInputs,
    cluster_tco,
    glacier_cost_per_genome,
    national_scale_tco,
    single_server_tco,
    table3_rows,
)


def test_table3_tco(benchmark, report):
    rep = report("table3_tco", "Table 3 — Cluster TCO and alignment costs")
    result = cluster_tco()
    rep.row("Compute server CAPEX", "$507K",
            f"${result.compute_capex / 1e3:.0f}K")
    rep.row("Storage server CAPEX", "$53K",
            f"${result.storage_capex / 1e3:.1f}K")
    rep.row("Fabric CAPEX", "$53K", f"${result.fabric_capex / 1e3:.1f}K")
    rep.row("Total CAPEX", "$613K", f"${result.total_capex / 1e3:.0f}K")
    rep.row("TCO (5 yr)", "$943K", f"${result.tco / 1e3:.0f}K")
    rep.row("Cost per alignment", "6.07 c",
            f"{result.cost_per_alignment * 100:.2f} c",
            "(60 nodes x 144 alignments/day)")
    rep.row("Storage cost per genome", "$8.83",
            f"${result.storage_cost_per_genome:.2f}")
    rep.row("Genome capacity", "~6,000",
            f"{result.genomes_capacity:.0f}")
    single = single_server_tco()
    rep.row("Single server cost/alignment", "4.1 c",
            f"{single.cost_per_alignment * 100:.2f} c")
    rep.row("Glacier 5-yr per genome", "$6.72",
            f"${glacier_cost_per_genome():.2f}")
    national = national_scale_tco(genomes_per_day=100_000 / 365.0)
    rep.add()
    rep.add(
        f"nation-scale sizing (100,000 Genomes/yr): "
        f"{national.compute_capex / CostInputs().compute_server_cost:.0f} "
        f"compute + "
        f"{national.storage_capex / CostInputs().storage_server_cost:.0f} "
        f"storage servers, TCO ${national.tco / 1e3:.0f}K"
    )
    rep.add()
    rep.add("shape checks:")
    rep.check("CAPEX matches Table 3 ($613K +-1%)",
              abs(result.total_capex - 613_089) < 6_500)
    rep.check("TCO ~= $943K", abs(result.tco - 943_000) < 10_000)
    rep.check("cost/alignment within 5% of 6.07c",
              abs(result.cost_per_alignment - 0.0607) < 0.006)
    rep.check("storage $/genome ~= $8.83",
              abs(result.storage_cost_per_genome - 8.83) < 0.10)
    rep.check("storage per genome >> alignment cost (2 orders)",
              result.storage_cost_per_genome
              > 100 * result.cost_per_alignment)
    rep.check("server cost dominates CAPEX (>80%)",
              result.compute_capex / result.total_capex > 0.8)
    rep.finish()

    benchmark.pedantic(cluster_tco, rounds=5, iterations=10)


def test_table3_rows_printable(benchmark):
    rows = benchmark(table3_rows)
    assert [r["item"] for r in rows][:3] == [
        "Compute Server", "Storage server", "Fabric ports"
    ]
