"""Sort-spill benchmark — gzip scratch vs raw-view scratch.

The zero-copy spill plane's claim: when sort scratch is a local
directory, spilling runs in the raw (identity-codec) frame layout and
restoring them as ``mmap`` views beats the gzip fallback, because the
spill cycle stops paying deflate on the way out and inflate-plus-copy
on the way back.  Two measurements:

spill cycle (gated)
    encode + store every run, then restore + decode every spilled
    chunk — the exact byte path phase 2's merge kernels pay, with the
    scratch codec as the *only* differing compute.  Gate:
    ``spill_cycle_speedup >= 1.5x`` (armed on >= 2 CPUs, recorded in
    the JSON either way).

end-to-end external sort (informational)
    ``sort_dataset`` wall time in both modes.  Run sorting and merging
    dominate and are identical in both, so this row shows the deployed
    effect, not the gated ratio.

Always-on shape checks: sorted output byte-identical raw vs gzip,
``decode_copies == 0`` on the view row (every restore was an in-place
view), zero ``/dev/shm`` leaks, and both scratch directories fully
removable afterwards (no pinned mappings, no stray spill files).

Run:  pytest benchmarks/bench_sort_spill.py --benchmark-json=BENCH_sort_spill.json
"""

from __future__ import annotations

import os
import shutil
import time

import numpy as np
import pytest

from repro.agd.chunk import read_chunk, read_chunk_header
from repro.agd.dataset import AGDDataset
from repro.align.result import AlignmentResult
from repro.core.sort import (
    SortConfig,
    SpillFileRef,
    encode_run_spill,
    local_scratch_root,
    open_spill_ref,
    sort_dataset,
    store_run_spill,
    verify_sorted,
)
from repro.dataflow import shm
from repro.storage.base import DirectoryStore, MemoryStore

RECORDS = 6_000
READ_LEN = 600
CHUNK = 300
PER_SUPER = 5
ROUNDS = 3
#: Row layout the sort uses: key columns first.
COLUMNS = ["results", "metadata", "bases", "qual"]


def _make_rows(rng) -> "list[tuple]":
    bases = rng.choice(np.frombuffer(b"ACGT", dtype=np.uint8),
                       size=(RECORDS, READ_LEN))
    quals = rng.integers(33, 74, size=(RECORDS, READ_LEN), dtype=np.uint8)
    contigs = rng.integers(0, 4, size=RECORDS)
    positions = rng.integers(0, 1_000_000, size=RECORDS)
    return [
        (
            AlignmentResult(flag=0, contig_index=int(contigs[i]),
                            position=int(positions[i]), cigar=b"600M"),
            f"read-{i:07d}".encode(),
            bases[i].tobytes(),
            quals[i].tobytes(),
        )
        for i in range(RECORDS)
    ]


def _make_dataset(rows) -> AGDDataset:
    return AGDDataset.create(
        "spillbench",
        {
            "results": [r[0] for r in rows],
            "metadata": [r[1] for r in rows],
            "bases": [r[2] for r in rows],
            "qual": [r[3] for r in rows],
        },
        MemoryStore(),
        chunk_size=CHUNK,
    )


def _spill_cycle(codec_name: str, scratch_dir) -> "tuple[float, dict]":
    """One full spill cycle: encode + store every run, restore + decode
    every spilled chunk.  Returns (best wall seconds, restore counters).

    Restore follows the merge-kernel byte path for each mode: raw
    frames are mapped under a :class:`SpillLease` and decoded in place;
    gzip frames come back through ``scratch.get`` and inflate into an
    owned copy.
    """
    rng = np.random.default_rng(4242)
    rows = _make_rows(rng)
    run_rows = [rows[i:i + PER_SUPER * CHUNK]
                for i in range(0, len(rows), PER_SUPER * CHUNK)]
    best = None
    counters: dict = {}
    for round_index in range(ROUNDS):
        root_dir = scratch_dir / f"{codec_name}-{round_index}"
        scratch = DirectoryStore(root_dir)
        root = local_scratch_root(scratch)
        counters = {"decode_copies": 0, "spill_view_bytes": 0,
                    "spill_restores": 0}
        start = time.monotonic()
        spilled = [
            store_run_spill(
                scratch, index,
                encode_run_spill(run, "location", COLUMNS, 1, None, 1,
                                 scratch_codec=codec_name),
            )
            for index, run in enumerate(run_rows)
        ]
        decoded_records = 0
        for run in spilled:
            for entry in run.entries:
                for column in COLUMNS:
                    chunk_file = entry.chunk_file(column)
                    path = root / chunk_file
                    lease = None
                    if codec_name == "none":
                        ref = SpillFileRef(str(path),
                                           os.path.getsize(path))
                        buf, lease = open_spill_ref(ref)
                    else:
                        buf = scratch.get(chunk_file)
                    header = read_chunk_header(buf)
                    decoded_records += len(read_chunk(buf).records)
                    counters["spill_restores"] += 1
                    if header.codec_name == "none":
                        counters["spill_view_bytes"] += \
                            header.uncompressed_size
                    else:
                        counters["decode_copies"] += 1
                    if lease is not None:
                        assert lease.release()
        wall = time.monotonic() - start
        assert decoded_records == len(COLUMNS) * RECORDS
        shutil.rmtree(root_dir)  # releases cleanly or the bench fails
        if best is None or wall < best:
            best = wall
    return best, counters


def _sorted_bytes(out_store, dataset) -> "dict[str, bytes]":
    return {
        entry.chunk_file(column):
            bytes(out_store.get(entry.chunk_file(column)))
        for entry in dataset.manifest.chunks
        for column in dataset.manifest.columns
    }


def _end_to_end(raw: bool, scratch_dir) -> "tuple[float, dict, dict]":
    rng = np.random.default_rng(4242)
    dataset = _make_dataset(_make_rows(rng))
    scratch = DirectoryStore(scratch_dir)
    out_store = MemoryStore()
    counters: dict = {}
    start = time.monotonic()
    out = sort_dataset(
        dataset, out_store,
        SortConfig(chunks_per_superchunk=PER_SUPER, raw_scratch=raw),
        scratch_store=scratch, counters=counters,
    )
    wall = time.monotonic() - start
    assert verify_sorted(out)
    blobs = _sorted_bytes(out_store, out)
    shutil.rmtree(scratch_dir)  # removable only if every lease released
    return wall, blobs, counters


def test_sort_spill_raw_vs_gzip(report, tmp_path):
    cpus = os.cpu_count() or 1
    volume = RECORDS * (READ_LEN * 2 + 30)  # bases + qual + key columns

    before = set(shm.list_segments("psna-"))
    gzip_wall, gzip_counters = _spill_cycle("gzip", tmp_path)
    raw_wall, raw_counters = _spill_cycle("none", tmp_path)
    gz_e2e, gz_blobs, gz_sort_counters = \
        _end_to_end(False, tmp_path / "e2e-gzip")
    raw_e2e, raw_blobs, raw_sort_counters = \
        _end_to_end(True, tmp_path / "e2e-raw")
    leaked = sorted(set(shm.list_segments("psna-")) - before)

    speedup = gzip_wall / raw_wall if raw_wall else 0.0
    e2e_speedup = gz_e2e / raw_e2e if raw_e2e else 0.0
    rep = report("sort_spill",
                 "Zero-copy spill plane — raw-view scratch vs gzip "
                 "scratch for the external sort")
    rep.add(f"host CPUs: {cpus}; {RECORDS} records x {READ_LEN} bp "
            f"(~{volume / 1e6:.0f} MB of row payload, "
            f"{PER_SUPER * CHUNK} records per run)")
    rep.row("gzip spill cycle", "deflate + inflate-copy",
            f"{gzip_wall:.3f} s")
    rep.row("raw-view spill cycle", ">= 1.5x",
            f"{raw_wall:.3f} s ({speedup:.2f}x)")
    rep.row("end-to-end sort, gzip scratch", "(informational)",
            f"{gz_e2e:.3f} s")
    rep.row("end-to-end sort, raw scratch", "(informational)",
            f"{raw_e2e:.3f} s ({e2e_speedup:.2f}x)")
    rep.metric("cpu_count", cpus)
    rep.metric("gzip_cycle_seconds", gzip_wall)
    rep.metric("raw_cycle_seconds", raw_wall)
    rep.metric("spill_cycle_speedup", speedup)
    rep.metric("gzip_e2e_seconds", gz_e2e)
    rep.metric("raw_e2e_seconds", raw_e2e)
    rep.metric("e2e_speedup", e2e_speedup)
    rep.metric("raw_spill_view_bytes", raw_counters["spill_view_bytes"])
    rep.metric("raw_decode_copies", raw_counters["decode_copies"])
    rep.metric("gzip_decode_copies", gzip_counters["decode_copies"])
    rep.metric("raw_sort_spill_view_bytes",
               raw_sort_counters.get("spill_view_bytes", 0))
    rep.metric("raw_sort_decode_copies",
               raw_sort_counters.get("decode_copies", 0))
    rep.add()
    rep.add("shape checks:")
    rep.check("sorted output byte-identical, raw vs gzip scratch",
              raw_blobs == gz_blobs and len(raw_blobs) > 0)
    rep.check("raw cycle restored every chunk as an in-place view "
              "(decode_copies == 0)",
              raw_counters["decode_copies"] == 0
              and raw_counters["spill_view_bytes"] > 0)
    rep.check("gzip cycle materialized every restore",
              gzip_counters["decode_copies"] ==
              gzip_counters["spill_restores"])
    rep.check("raw end-to-end sort reported zero decode copies",
              raw_sort_counters.get("decode_copies", 0) == 0
              and raw_sort_counters.get("spill_view_bytes", 0) > 0)
    rep.check("gzip end-to-end sort stayed on the fallback",
              gz_sort_counters.get("decode_copies", 0) > 0)
    rep.check("no /dev/shm segments leaked", not leaked)
    armed = cpus >= 2
    note = f"needs >= 2 CPUs, host has {cpus}" if not armed else ""
    rep.gate("spill_cycle_speedup", 1.5, speedup, armed, note=note)
    rep.finish()
