"""Table 2 — Dataset Sort Time, Single Server (§5.6).

Paper result (coordinate-sorting an aligned whole-genome dataset):

    Persona                  556 s   1.00x
    Samtools                 856 s   1.54x slower
    Samtools w/ conversion  1289 s   2.32x slower
    Picard                  2866 s   5.15x slower

Shape to reproduce: columnar AGD sort beats the row-oriented sorters;
paying the SAM->BAM conversion makes samtools worse; the single-threaded
object-heavy Picard-like sorter is slowest.
"""

from __future__ import annotations

import io
import time

import pytest

from repro.core.baselines import PicardLikeSorter, SamtoolsLikeSorter
from repro.core.pipelines import align_dataset
from repro.core.sort import SortConfig, sort_dataset, verify_sorted
from repro.core.subgraphs import AlignGraphConfig
from repro.formats.bam import read_bam
from repro.formats.converters import export_sam
from repro.storage.base import MemoryStore


@pytest.fixture(scope="module")
def aligned_world(bench_reads, bench_reference, bench_aligner):
    from repro.formats.converters import import_reads

    dataset = import_reads(
        bench_reads, "sortbench", MemoryStore(), chunk_size=400,
        reference=bench_reference.manifest_entry(),
    )
    align_dataset(dataset, bench_aligner,
                  config=AlignGraphConfig(executor_threads=1))
    sam_buf = io.BytesIO()
    export_sam(dataset, sam_buf)
    return dataset, sam_buf.getvalue()


def test_table2_sort_comparison(benchmark, aligned_world, report,
                                bench_compute_backend):
    dataset, sam_blob = aligned_world
    timings = {}

    start = time.monotonic()
    sorted_ds = sort_dataset(dataset, MemoryStore(),
                             SortConfig(chunks_per_superchunk=4),
                             backend=bench_compute_backend)
    timings["persona"] = time.monotonic() - start
    assert verify_sorted(sorted_ds)

    # "plenty of memory": samtools sorts in one pass, as on the testbed.
    samtools = SamtoolsLikeSorter(run_size=100_000)
    bam_blob = samtools.convert_sam_to_bam(sam_blob)
    start = time.monotonic()
    sorted_bam = samtools.sort_bam(bam_blob)
    timings["samtools"] = time.monotonic() - start

    start = time.monotonic()
    samtools.sort_sam(sam_blob)
    timings["samtools_conv"] = time.monotonic() - start

    start = time.monotonic()
    PicardLikeSorter().sort_bam(bam_blob)
    timings["picard"] = time.monotonic() - start

    # Correctness: both sorters emit coordinate order.
    _, samtools_records = read_bam(io.BytesIO(sorted_bam))
    samtools_keys = [
        r.location_key() for r in samtools_records if not r.is_unmapped
    ]
    agd_keys = [
        (r.contig_index, r.position)
        for r in sorted_ds.read_column("results") if r.is_aligned
    ]
    assert agd_keys == sorted(agd_keys)
    assert samtools_keys == sorted(samtools_keys)

    rep = report("table2_sort", "Table 2 — Dataset Sort Time, Single Server")
    p = timings["persona"]
    rep.row("Persona (AGD columnar sort)", "556 s (1.0x)",
            f"{p:.2f} s (1.0x)")
    rep.row("Samtools-like (BAM rows)", "856 s (1.54x)",
            f"{timings['samtools']:.2f} s ({timings['samtools'] / p:.2f}x)")
    rep.row("Samtools-like w/ conversion", "1289 s (2.32x)",
            f"{timings['samtools_conv']:.2f} s "
            f"({timings['samtools_conv'] / p:.2f}x)")
    rep.row("Picard-like (single-threaded)", "2866 s (5.15x)",
            f"{timings['picard']:.2f} s ({timings['picard'] / p:.2f}x)")
    rep.add()
    rep.add("shape checks:")
    rep.check("Persona fastest", p < min(timings["samtools"],
                                         timings["samtools_conv"],
                                         timings["picard"]))
    rep.check("conversion makes samtools worse",
              timings["samtools_conv"] > timings["samtools"])
    rep.check("Picard-like at the slow end (>=0.9x the slowest baseline)",
              timings["picard"] >= 0.9 * max(timings["samtools"],
                                             timings["samtools_conv"]))
    rep.check("samtools-like at least 1.2x slower than Persona",
              timings["samtools"] / p > 1.2)
    rep.check("Picard-like at least 2x slower than Persona",
              timings["picard"] / p > 2.0)
    rep.add()
    rep.add("note: the paper's 5.15x Picard gap includes samtools using 48")
    rep.add("cores while Picard is single-threaded; under the GIL every")
    rep.add("sorter here is single-threaded, so only the per-record object/")
    rep.add("validation overhead component of the gap is reproducible.")
    rep.finish()

    benchmark.pedantic(
        lambda: sort_dataset(dataset, MemoryStore(),
                             SortConfig(chunks_per_superchunk=4)),
        rounds=1, iterations=1,
    )
