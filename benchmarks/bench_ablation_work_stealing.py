"""Ablation — work stealing vs bounded shared queues (§4.5).

The paper: "A server can become a straggler if its queue contains
'expensive' chunks with high compute latency.  Work stealing [5] is an
alternative to avoid stragglers, but the approach of bounding the queues
is simpler and incurs less communication in a distributed system."

This ablation runs a skewed workload (some chunks 8x more expensive than
others, the straggler scenario) on both designs: Persona's shared
fine-grain task queue (:class:`Executor`) and a Blumofe-Leiserson
work-stealing executor.  Tasks sleep rather than compute so scheduling —
not the GIL — determines the outcome.

Expected shape: both designs reach comparable makespan (stealing repairs
the imbalance it creates; the shared queue never creates it), while the
stealing design performs measurable extra coordination (steal attempts) —
the §4.5 argument for the simpler design.
"""

from __future__ import annotations

import time

from repro.dataflow.executor import Executor
from repro.dataflow.stealing import WorkStealingExecutor

THREADS = 4
CHUNKS = 12
TASKS_PER_CHUNK = 8
CHEAP_SLEEP = 0.004
EXPENSIVE_SLEEP = 8 * CHEAP_SLEEP


def _skewed_chunks():
    """Chunks 0, 4, 8, ... are 8x more expensive.  Under round-robin
    placement they all land on worker 0 — the worst-case straggler mix
    that stealing must repair and the shared queue never creates."""
    chunks = []
    for index in range(CHUNKS):
        sleep = EXPENSIVE_SLEEP if index % THREADS == 0 else CHEAP_SLEEP
        chunks.append([
            (lambda s=sleep: time.sleep(s)) for _ in range(TASKS_PER_CHUNK)
        ])
    return chunks


def _run(executor) -> float:
    start = time.monotonic()
    completions = [executor.submit_chunk(chunk) for chunk in _skewed_chunks()]
    for completion in completions:
        completion.wait(timeout=60)
    return time.monotonic() - start


def test_ablation_work_stealing(benchmark, report):
    shared = Executor(THREADS, name="shared-queue")
    shared_wall = _run(shared)
    shared.shutdown()

    stealing = WorkStealingExecutor(THREADS, name="stealing")
    stealing_wall = _run(stealing)
    steals = stealing.stats.steals
    attempts = stealing.stats.steal_attempts
    stealing.shutdown()

    total_sleep = sum(
        (EXPENSIVE_SLEEP if i % THREADS == 0 else CHEAP_SLEEP) * TASKS_PER_CHUNK
        for i in range(CHUNKS)
    )
    ideal = total_sleep / THREADS

    rep = report("ablation_work_stealing",
                 "Ablation — work stealing vs bounded shared queues (§4.5)")
    rep.add(f"workload: {CHUNKS} chunks x {TASKS_PER_CHUNK} tasks; chunks "
            f"0,4,8 are 8x more expensive (all on one stealing worker); "
            f"{THREADS} threads; "
            f"ideal makespan {ideal:.2f}s")
    rep.add(f"shared fine-grain queue (Persona, §4.3): {shared_wall:.3f}s")
    rep.add(f"work stealing [Blumofe-Leiserson]:       {stealing_wall:.3f}s "
            f"({steals} steals, {attempts} steal attempts)")
    rep.add()
    rep.add("shape checks:")
    rep.check("shared queue achieves near-ideal makespan (<1.5x ideal)",
              shared_wall < 1.5 * ideal)
    rep.check("stealing also avoids stragglers (<1.6x ideal)",
              stealing_wall < 1.6 * ideal)
    rep.check("the two designs are comparable (within 40%)",
              abs(shared_wall - stealing_wall)
              < 0.4 * max(shared_wall, stealing_wall))
    rep.check("stealing pays coordination the shared queue avoids (>0 "
              "steal attempts)", attempts > 0)
    rep.finish()

    benchmark.pedantic(
        lambda: _run_and_shutdown(), rounds=1, iterations=1
    )


def _run_and_shutdown():
    executor = Executor(THREADS)
    wall = _run(executor)
    executor.shutdown()
    return wall
