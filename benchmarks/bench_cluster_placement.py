"""Cluster stage placement benchmark — 1-server vs 2-server placed runs.

The §5.2 story generalized to the whole workload: a placement plan puts
align+sort on server A and dupmark+varcall on server B, chunk names flow
from the work edge, and work items cross the stage boundary through a
broker edge — in-process reference transport and a real loopback TCP
socket.  Shape properties enforced (timing reported, not asserted — CI
runners are noisy and usually single-core, where two GIL-sharing servers
cannot beat one):

* the placed runs produce byte-identical sorted records, duplicate
  flags, and variant calls to the single-Session one-graph run;
* every chunk crosses each pipeline cut exactly once (no redelivery on
  the healthy path);
* completion imbalance across servers stays bounded (the paper's
  "no measurable completion-time imbalance", §1).

Run:  pytest benchmarks/bench_cluster_placement.py \
          --benchmark-json=BENCH_cluster_placement.json
"""

from __future__ import annotations

from repro.agd.dataset import AGDDataset
from repro.cluster.multiserver import run_placed_pipeline
from repro.cluster.placement import PlacementPlan
from repro.core.pipelines import run_pipeline
from repro.core.sort import SortConfig, verify_sorted
from repro.formats.converters import import_reads
from repro.storage.base import MemoryStore

SORT_CONFIG = SortConfig(chunks_per_superchunk=4)
CHUNK = 400
PLAN = "A=align,sort;B=dupmark,varcall"


def _fresh_dataset(bench_reads, bench_reference) -> AGDDataset:
    return import_reads(
        bench_reads, "placed", MemoryStore(), chunk_size=CHUNK,
        reference=bench_reference.manifest_entry(),
    )


def _run_single(dataset, aligner, reference, workers):
    return run_pipeline(
        dataset,
        ("align", "sort", "dupmark", "varcall"),
        aligner=aligner,
        reference=reference,
        sort_config=SORT_CONFIG,
        backend="serial",
        workers=workers,
    )


def _run_placed(dataset, aligner, reference, transport):
    return run_placed_pipeline(
        dataset,
        PlacementPlan.parse(PLAN),
        aligner=aligner,
        reference=reference,
        sort_config=SORT_CONFIG,
        backend="serial",
        transport=transport,
    )


def _identical(placed, single) -> bool:
    placed_sorted = placed.sorted_dataset
    single_sorted = single.sorted_dataset
    return all(
        placed_sorted.read_column(c) == single_sorted.read_column(c)
        for c in single_sorted.columns
    ) and placed.variants == single.variants and (
        placed.dupmark_stats.duplicates_marked
        == single.dupmark_stats.duplicates_marked
    )


def test_cluster_placement(
    benchmark, bench_reads, bench_reference, bench_aligner,
    bench_workers, report,
):
    single = _run_single(
        _fresh_dataset(bench_reads, bench_reference),
        bench_aligner, bench_reference, bench_workers,
    )
    placed_local = _run_placed(
        _fresh_dataset(bench_reads, bench_reference),
        bench_aligner, bench_reference, "local",
    )
    placed_tcp = _run_placed(
        _fresh_dataset(bench_reads, bench_reference),
        bench_aligner, bench_reference, "tcp",
    )

    num_chunks = len(bench_reads) // CHUNK + (1 if len(bench_reads) % CHUNK
                                              else 0)
    rep = report(
        "cluster_placement",
        "Distributed stage placement — 1-server vs 2-server placed runs",
    )
    rep.add(f"reads: {len(bench_reads)}; chunks: {num_chunks}; "
            f"plan: {PLAN}")
    rep.row("single Session (1 server, one graph)", "baseline",
            f"{single.wall_seconds:.2f} s")
    rep.row("placed, in-process edges (2 servers)", "identical bytes",
            f"{placed_local.wall_seconds:.2f} s")
    rep.row("placed, loopback TCP edges (2 servers)", "identical bytes",
            f"{placed_tcp.wall_seconds:.2f} s")
    for server in placed_tcp.servers:
        rep.row(f"  TCP server {server.server} "
                f"[{','.join(server.stages)}]", "overlapped",
                f"{server.chunks} chunks / {server.wall_seconds:.2f} s")
    for edge, stat in placed_tcp.broker_stats.items():
        rep.row(f"  TCP edge {edge}", "chunk-granular",
                f"{stat['total_published']} msgs, "
                f"max depth {stat['max_depth']}")
    rep.metric("single_wall_seconds", single.wall_seconds)
    rep.metric("placed_local_wall_seconds", placed_local.wall_seconds)
    rep.metric("placed_tcp_wall_seconds", placed_tcp.wall_seconds)
    rep.metric("tcp_redelivered", placed_tcp.total_redelivered)
    rep.metric("tcp_imbalance", placed_tcp.completion_imbalance)

    rep.add()
    rep.add("shape checks:")
    rep.check("placed (local) sorted dataset is sorted",
              verify_sorted(placed_local.sorted_dataset))
    rep.check("placed (local) byte-identical to single session",
              _identical(placed_local, single))
    rep.check("placed (TCP socket) byte-identical to single session",
              _identical(placed_tcp, single))
    rep.check(
        "every chunk crossed each cut exactly once (no redelivery)",
        placed_tcp.total_redelivered == 0
        and all(s["total_published"] == num_chunks
                for s in placed_tcp.broker_stats.values()),
    )
    rep.check(
        "completion imbalance bounded (< 3x on a shared-GIL host)",
        placed_tcp.completion_imbalance < 3.0,
    )
    rep.finish()

    benchmark.pedantic(
        lambda: _run_placed(
            _fresh_dataset(bench_reads, bench_reference), bench_aligner,
            bench_reference, "tcp",
        ),
        rounds=1, iterations=1,
    )
