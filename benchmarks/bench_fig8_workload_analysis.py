"""Figure 8 — Microarchitectural workload analysis (§6).

Paper result (VTune over both aligners, with SPEC points for reference):
both aligners are heavily backend-bound; for SNAP "the issue is due to
the core and not memory access" (short, branchy edit-distance calls);
"in BWA-MEM, the system is much more memory bound" (cache and DTLB misses
in FM-index walks).  Hyperthreading shifts part of the memory stall into
retirement.

We reproduce the analysis through operation-mix profiling of our kernels
(see ``repro.metrics.microarch``): the op counts are measured from real
aligner runs; the per-class top-down weights are fixed constants, so the
SNAP-vs-BWA contrast emerges from what each algorithm actually executes.
"""

from __future__ import annotations

from repro.metrics.microarch import (
    SPEC_REFERENCE,
    hyperthreading_shift,
    profile_bwa,
    profile_snap,
)


def _fmt_row(name, row):
    return (
        f"{name:<24} retiring {row['retiring']:>5.1%}  "
        f"frontend {row['frontend']:>5.1%}  "
        f"badspec {row['bad_speculation']:>5.1%}  "
        f"core {row['backend_core']:>5.1%}  "
        f"memory {row['backend_memory']:>5.1%}"
    )


def test_fig8_workload_analysis(
    benchmark, bench_aligner, bench_reference, bench_reads, report,
):
    from repro.align.bwa import BwaMemAligner, FMIndex

    batch = [r.bases for r in bench_reads[:150]]
    snap_profile = profile_snap(bench_aligner, batch)
    bwa_aligner = BwaMemAligner(FMIndex(bench_reference))
    bwa_profile = profile_bwa(bwa_aligner, batch[:60])
    snap_ht = hyperthreading_shift(snap_profile)
    bwa_ht = hyperthreading_shift(bwa_profile)

    rep = report("fig8_workload_analysis",
                 "Figure 8 — Workload analysis (top-down breakdown)")
    for profile in (snap_profile, snap_ht, bwa_profile, bwa_ht):
        rep.add(_fmt_row(profile.name, profile.as_row()))
    rep.add()
    rep.add("SPEC reference points (published characterizations):")
    for name, row in SPEC_REFERENCE.items():
        rep.add(_fmt_row(name, row))
    rep.add()
    rep.add(f"operation mix measured: SNAP {snap_profile.op_counts}")
    rep.add(f"                        BWA  {bwa_profile.op_counts}")
    rep.add()
    rep.add("shape checks:")
    rep.check("SNAP is backend-bound (>35%)",
              snap_profile.backend_bound > 0.35)
    rep.check("BWA is backend-bound (>35%)",
              bwa_profile.backend_bound > 0.35)
    rep.check("SNAP's backend stall is core-dominated",
              snap_profile.backend_core > snap_profile.backend_memory)
    rep.check("BWA's backend stall is memory-dominated",
              bwa_profile.backend_memory > bwa_profile.backend_core)
    rep.check(
        "BWA more memory-bound than SNAP (the §6 contrast)",
        bwa_profile.memory_fraction_of_backend
        > snap_profile.memory_fraction_of_backend + 0.2,
    )
    rep.check(
        "BWA's profile resembles mcf more than hmmer does",
        abs(bwa_profile.backend_memory
            - SPEC_REFERENCE["mcf (memory)"]["backend_memory"])
        < abs(bwa_profile.backend_memory
              - SPEC_REFERENCE["hmmer (compute)"]["backend_memory"]),
    )
    rep.check("HT shifts memory stall into retirement for BWA",
              bwa_ht.backend_memory < bwa_profile.backend_memory
              and bwa_ht.retiring > bwa_profile.retiring)
    rep.finish()

    benchmark.pedantic(
        lambda: profile_snap(bench_aligner, batch[:30]),
        rounds=1, iterations=1,
    )
