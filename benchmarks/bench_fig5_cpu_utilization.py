"""Figure 5 — CPU utilization: single disk vs RAID0 (§5.3).

Paper result: on a single disk, standalone SNAP "shows a cyclical pattern
... where the operating system's buffer cache writeback policy competes
with the application-driven data reads; during periods of writeback, the
application is unable to read input data fast enough and threads go
idle", while Persona stays CPU-bound.  On RAID0 both stay CPU-bound.

Shape to reproduce: the standalone/single-disk trace dips repeatedly; the
Persona traces and the RAID0 traces are flat and high.
"""

from __future__ import annotations

import pytest

from repro.core.pipelines import align_standalone, stage_fastq_shards
from repro.core.subgraphs import (
    AlignGraphConfig,
    build_align_graph,
    build_standalone_graph,
)
from repro.dataflow.session import Session
from repro.metrics.cputrace import UtilizationSampler
from repro.storage.base import MemoryStore
from repro.storage.diskmodel import WritebackDiskModel, raid0
from repro.storage.local import CountingStore, ModeledDiskStore

CONFIG = AlignGraphConfig(
    executor_threads=1, aligner_nodes=1, reader_nodes=1, parser_nodes=1,
)


@pytest.fixture(scope="module")
def fig5_config(backendize):
    return backendize(CONFIG)


def _run_with_trace(build_fn):
    built = build_fn()
    with UtilizationSampler(
        [built.busy_counter], capacity=1, interval=0.01
    ) as sampler:
        Session(built.graph).run(timeout=300)
    built.close(wait=False)
    return sampler.trace


@pytest.fixture(scope="module")
def world(bench_reads, bench_reference, bench_aligner, fig5_config):
    from repro.formats.converters import import_reads

    dataset = import_reads(
        bench_reads, "fig5", MemoryStore(), chunk_size=400,
        reference=bench_reference.manifest_entry(),
    )
    # Calibrate the single disk from an unmetered standalone run.
    staging = MemoryStore()
    stage_fastq_shards(dataset, staging)
    counting = CountingStore(staging)
    pure = align_standalone(
        dataset.manifest, counting, counting, bench_aligner,
        bench_reference.manifest_entry(), config=fig5_config,
    )
    io_bytes = counting.bytes_read + counting.bytes_written
    single_bw = io_bytes / (1.8 * pure.wall_seconds)
    return dataset, staging, single_bw, counting.bytes_written


def test_fig5_cpu_utilization(
    benchmark, world, bench_aligner, bench_reference, report, fig5_config,
):
    dataset, fastq_staging, single_bw, sam_bytes = world
    contigs = bench_reference.manifest_entry()

    def single_disk():
        # Small dirty limit -> several writeback storms per run.
        return WritebackDiskModel(
            read_bandwidth=single_bw, write_bandwidth=single_bw,
            dirty_limit=max(32 * 1024, sam_bytes // 8),
        )

    traces = {}
    # Standalone, single disk: the Fig. 5a cyclical pattern.
    store = ModeledDiskStore(single_disk(), backing=fastq_staging)
    traces["standalone/single"] = _run_with_trace(
        lambda: build_standalone_graph(
            dataset.manifest, store, store, bench_aligner, contigs,
            config=fig5_config,
        )
    )
    # Persona, single disk.
    pstore = ModeledDiskStore(single_disk(), backing=dataset.store)
    traces["persona/single"] = _run_with_trace(
        lambda: build_align_graph(
            dataset.manifest, pstore, pstore, bench_aligner, config=fig5_config,
        )
    )
    # Standalone, RAID0.
    rstore = ModeledDiskStore(raid0(6, single_bw), backing=fastq_staging)
    traces["standalone/raid0"] = _run_with_trace(
        lambda: build_standalone_graph(
            dataset.manifest, rstore, rstore, bench_aligner, contigs,
            config=fig5_config,
        )
    )
    # Persona, RAID0.
    prstore = ModeledDiskStore(raid0(6, single_bw), backing=dataset.store)
    traces["persona/raid0"] = _run_with_trace(
        lambda: build_align_graph(
            dataset.manifest, prstore, prstore, bench_aligner, config=fig5_config,
        )
    )

    rep = report("fig5_cpu_utilization",
                 "Figure 5 — CPU utilization, single disk vs RAID0")
    for name, trace in traces.items():
        rep.add(f"\n{name}: mean utilization "
                f"{trace.mean_utilization:.2f}, dips "
                f"{trace.dip_count(0.5)}")
        rep.add(trace.ascii_plot(width=60, height=5))
    sa_single = traces["standalone/single"]
    pe_single = traces["persona/single"]
    sa_raid = traces["standalone/raid0"]
    rep.add()
    rep.add("shape checks:")
    rep.check("standalone/single shows cyclical starvation (>=2 dips)",
              sa_single.dip_count(0.5) >= 2)
    rep.check("standalone/single has the lowest mean utilization",
              sa_single.mean_utilization
              == min(t.mean_utilization for t in traces.values()))
    rep.check("persona/single stays CPU-bound (mean >= 0.7)",
              pe_single.mean_utilization >= 0.7)
    rep.check("RAID0 restores standalone utilization (mean >= 0.7)",
              sa_raid.mean_utilization >= 0.7)
    rep.check(
        "persona/single clearly above standalone/single (>=1.2x mean)",
        pe_single.mean_utilization >= 1.2 * sa_single.mean_utilization,
    )
    rep.finish()

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
