"""End-to-end pipeline benchmark — eager five-pass vs one-graph streaming.

The tentpole claim of the one-graph refactor (§4.1, §4.5): running
align -> sort -> dupmark -> varcall as a SINGLE composed dataflow graph
produces byte-identical results to the eager per-stage passes while
touching storage far less — the intermediate dataset never materializes
between stages, because chunks stream across fused stage boundaries
through bounded queues.

Shape properties enforced here (timing is reported, not asserted — CI
runners are noisy and often single-core):

* the two paths produce identical sorted records, duplicate flags, and
  variant calls;
* the one-graph path moves fewer bytes through the chunk stores than
  the eager passes (structural, timing-independent: eager re-reads the
  dataset once per stage, the graph reads it once).

Run:  pytest benchmarks/bench_pipeline_e2e.py --benchmark-json=BENCH_pipeline_e2e.json
"""

from __future__ import annotations

import time

from repro.agd.dataset import AGDDataset
from repro.core.dupmark import mark_duplicates
from repro.core.pipelines import align_dataset, run_pipeline
from repro.core.sort import SortConfig, sort_dataset, verify_sorted
from repro.core.subgraphs import AlignGraphConfig
from repro.core.varcall import call_variants
from repro.dataflow.backends import make_backend
from repro.formats.converters import import_reads
from repro.storage.local import CountingStore

SORT_CONFIG = SortConfig(chunks_per_superchunk=4)
CHUNK = 400


def _fresh_dataset(bench_reads, bench_reference) -> AGDDataset:
    store = CountingStore()
    dataset = import_reads(
        bench_reads, "e2e", store, chunk_size=CHUNK,
        reference=bench_reference.manifest_entry(),
    )
    # Import traffic is not part of either measured pipeline.
    store.bytes_read = 0
    store.bytes_written = 0
    return dataset


def _run_eager(dataset, aligner, reference, backend_kind, workers,
               batch_size):
    """The pre-refactor workload: one full pass over the store per stage."""
    walls = {}
    backend = None
    if backend_kind != "serial":
        backend = make_backend(backend_kind, workers=workers,
                               batch_size=batch_size)
        backend.start()
    try:
        start = time.monotonic()
        align_dataset(
            dataset, aligner,
            config=AlignGraphConfig(
                executor_threads=workers,
                backend=backend if backend is not None else "serial",
            ),
        )
        walls["align"] = time.monotonic() - start

        sort_store = CountingStore()
        start = time.monotonic()
        sorted_ds = sort_dataset(dataset, sort_store, SORT_CONFIG,
                                 backend=backend)
        walls["sort"] = time.monotonic() - start

        start = time.monotonic()
        dup_stats = mark_duplicates(sorted_ds, backend=backend)
        walls["dupmark"] = time.monotonic() - start

        start = time.monotonic()
        variants = call_variants(sorted_ds, reference, backend=backend)
        walls["varcall"] = time.monotonic() - start
    finally:
        if backend is not None:
            backend.shutdown()
    return sorted_ds, dup_stats, variants, walls, sort_store


def _run_one_graph(dataset, aligner, reference, backend_kind, workers,
                   batch_size):
    sort_store = CountingStore()
    outcome = run_pipeline(
        dataset,
        ("align", "sort", "dupmark", "varcall"),
        aligner=aligner,
        reference=reference,
        align_config=AlignGraphConfig(executor_threads=workers),
        sort_config=SORT_CONFIG,
        output_store=sort_store,
        backend=backend_kind,
        workers=workers,
        batch_size=batch_size,
    )
    return outcome, sort_store


def _peak_memory_run(dataset, aligner, reference, backend_kind, workers,
                     batch_size) -> "tuple[int, int]":
    """One extra one-graph run under tracemalloc; returns (tracemalloc
    peak bytes, max RSS bytes).  Separate from the timed runs because
    tracemalloc's allocation hooks slow Python down measurably."""
    import resource
    import tracemalloc

    tracemalloc.start()
    try:
        _run_one_graph(dataset, aligner, reference, backend_kind, workers,
                       batch_size)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    # ru_maxrss is KiB on Linux (bytes on macOS; close enough for a
    # report-only metric).
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    return peak, rss


def test_pipeline_e2e(
    benchmark, bench_reads, bench_reference, bench_aligner,
    bench_backend_kind, bench_batch_size, bench_workers, report,
):
    eager_ds = _fresh_dataset(bench_reads, bench_reference)
    eager_sorted, eager_stats, eager_variants, walls, eager_sort_store = \
        _run_eager(eager_ds, bench_aligner, bench_reference,
                   bench_backend_kind, bench_workers, bench_batch_size)
    eager_wall = sum(walls.values())
    eager_bytes = (
        eager_ds.store.bytes_read + eager_ds.store.bytes_written
        + eager_sort_store.bytes_read + eager_sort_store.bytes_written
    )

    graph_ds = _fresh_dataset(bench_reads, bench_reference)
    outcome, graph_sort_store = _run_one_graph(
        graph_ds, bench_aligner, bench_reference,
        bench_backend_kind, bench_workers, bench_batch_size,
    )
    graph_bytes = (
        graph_ds.store.bytes_read + graph_ds.store.bytes_written
        + graph_sort_store.bytes_read + graph_sort_store.bytes_written
    )
    graph_sorted = outcome.sorted_dataset

    rep = report(
        "pipeline_e2e",
        "End-to-end WGS pipeline — eager five-pass vs one-graph streaming",
    )
    rep.add(f"reads: {len(bench_reads)}; chunks: {graph_ds.num_chunks}; "
            f"backend: {bench_backend_kind} x{bench_workers}")
    for stage, wall in walls.items():
        rep.row(f"eager {stage} pass", "full store pass", f"{wall:.2f} s")
    rep.row("eager total (sequential passes)", "baseline",
            f"{eager_wall:.2f} s")
    rep.row("one-graph pipeline (single Session.run)", "<= eager",
            f"{outcome.wall_seconds:.2f} s "
            f"({eager_wall / outcome.wall_seconds:.2f}x)")
    for stage in outcome.stages:
        rep.row(f"  stage {stage.name} busy", "overlapped",
                f"{stage.busy_seconds:.2f} s")
    rep.row("eager store traffic", "per-stage re-reads",
            f"{eager_bytes:,} B")
    rep.row("one-graph store traffic", "read once, stream",
            f"{graph_bytes:,} B ({eager_bytes / graph_bytes:.2f}x less)")
    heap_peak, max_rss = _peak_memory_run(
        _fresh_dataset(bench_reads, bench_reference), bench_aligner,
        bench_reference, bench_backend_kind, bench_workers,
        bench_batch_size,
    )
    rep.row("one-graph peak heap (tracemalloc)", "bounded queues",
            f"{heap_peak / 1e6:.1f} MB")
    rep.row("process max RSS", "report-only", f"{max_rss / 1e6:.1f} MB")
    rep.metric("peak_heap_bytes", heap_peak)
    rep.metric("max_rss_bytes", max_rss)
    rep.add()
    rep.add("shape checks:")
    rep.check("one-graph sorted dataset is sorted",
              verify_sorted(graph_sorted))
    identical = all(
        graph_sorted.read_column(c) == eager_sorted.read_column(c)
        for c in eager_sorted.columns
    )
    rep.check("one-graph records byte-identical to eager passes", identical)
    stats = outcome.dupmark_stats
    rep.check(
        "duplicate accounting identical",
        (stats.records, stats.duplicates_marked, stats.unmapped)
        == (eager_stats.records, eager_stats.duplicates_marked,
            eager_stats.unmapped),
    )
    rep.check("variant calls identical", outcome.variants == eager_variants)
    rep.check(
        "one-graph streaming moves fewer bytes than eager passes",
        graph_bytes < eager_bytes,
    )
    rep.finish()

    benchmark.pedantic(
        lambda: _run_one_graph(
            _fresh_dataset(bench_reads, bench_reference), bench_aligner,
            bench_reference, bench_backend_kind, bench_workers,
            bench_batch_size,
        ),
        rounds=1, iterations=1,
    )
