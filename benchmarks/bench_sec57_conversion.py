"""§5.7 — Conversion and compatibility throughput.

Paper result: "FASTQ is imported to AGD at 360 MB/s, while BAM format
files are produced from AGD at 82 MB/s" — import is ~4.4x faster than
BAM export, because export must reassemble and re-encode full
row-oriented records.

Shape to reproduce: import MB/s exceeds BAM export MB/s by severalfold;
both round-trip losslessly.
"""

from __future__ import annotations

import io
import time

import pytest

from repro.core.pipelines import align_dataset
from repro.core.subgraphs import AlignGraphConfig
from repro.formats.converters import (
    export_bam,
    export_fastq,
    export_sam,
    import_fastq_stream,
)
from repro.formats.fastq import fastq_bytes
from repro.storage.base import MemoryStore


@pytest.fixture(scope="module")
def conversion_world(bench_reads, bench_reference, bench_aligner):
    fastq_blob = fastq_bytes(bench_reads)
    from repro.formats.converters import import_reads

    aligned = import_reads(
        bench_reads, "conv", MemoryStore(), chunk_size=400,
        reference=bench_reference.manifest_entry(),
    )
    align_dataset(aligned, bench_aligner,
                  config=AlignGraphConfig(executor_threads=1))
    return fastq_blob, aligned


def test_sec57_conversion_throughput(benchmark, conversion_world, report):
    fastq_blob, aligned = conversion_world

    # FASTQ -> AGD import.
    start = time.monotonic()
    imported = import_fastq_stream(
        io.BytesIO(fastq_blob), "imp", MemoryStore(), chunk_size=400
    )
    import_seconds = time.monotonic() - start
    import_rate = len(fastq_blob) / import_seconds

    # AGD -> BAM export.
    bam_buf = io.BytesIO()
    start = time.monotonic()
    bam_bytes = export_bam(aligned, bam_buf)
    bam_seconds = time.monotonic() - start
    bam_rate = bam_bytes / bam_seconds

    # AGD -> SAM export (for context; the paper reports BAM).
    sam_buf = io.BytesIO()
    start = time.monotonic()
    export_sam(aligned, sam_buf)
    sam_seconds = time.monotonic() - start
    sam_rate = len(sam_buf.getvalue()) / sam_seconds

    # Round trips.
    fastq_back = io.BytesIO()
    export_fastq(imported, fastq_back)
    lossless = fastq_back.getvalue() == fastq_blob

    rep = report("sec57_conversion",
                 "Sec 5.7 — Conversion and compatibility throughput")
    rep.row("FASTQ import", "360 MB/s", f"{import_rate / 1e6:.1f} MB/s")
    rep.row("BAM export", "82 MB/s", f"{bam_rate / 1e6:.1f} MB/s")
    rep.row("import/export ratio", "4.4x",
            f"{import_rate / bam_rate:.2f}x")
    rep.add(f"SAM export (context): {sam_rate / 1e6:.1f} MB/s")
    rep.add()
    rep.add("shape checks:")
    rep.check("import faster than BAM export (>2x)",
              import_rate / bam_rate > 2.0)
    rep.check("FASTQ -> AGD -> FASTQ is lossless", lossless)
    rep.check("import preserved all records",
              imported.total_records == aligned.total_records)
    rep.finish()

    benchmark.pedantic(
        lambda: import_fastq_stream(
            io.BytesIO(fastq_blob), "b", MemoryStore(), chunk_size=400
        ),
        rounds=1, iterations=1,
    )
