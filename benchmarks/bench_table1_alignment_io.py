"""Table 1 — Dataset Alignment Time, Single Server (§5.3).

Paper result (SNAP standalone on gzip'd FASTQ vs Persona on AGD):

    Disk(Single)   817 s vs 501 s    -> 1.63x
    Disk(RAID)     494 s vs 499 s    -> 0.99x (parity)
    Network        760 s vs 493.5 s  -> 1.54x
    Data Read      18 GB vs 15 GB    -> 1.2x
    Data Written   67 GB vs 4 GB     -> 16.75x

Shape to reproduce: Persona wins on bandwidth-starved storage (single
disk, network) because AGD reads only the needed columns and writes only
the compact results column; on RAID0 both systems are CPU-bound and tie.

Methodology: storage devices are bandwidth-modeled.  The single-disk
bandwidth is auto-calibrated so the *standalone* pipeline's byte demand
exceeds it by the paper's ~1.6x (its measured Table 1 regime) while
Persona's much smaller demand stays below it; RAID0 provides 6x stripes
(ample for both); the network store sits between.  This reproduces the
compute-to-I/O ratios of the paper's testbed on any host speed — the
byte *volumes* (the last two rows) are real measurements of our formats,
not calibrated.
"""

from __future__ import annotations

import pytest

from repro.agd.dataset import AGDDataset
from repro.core.pipelines import (
    align_dataset,
    align_standalone,
    stage_fastq_shards,
)
from repro.core.subgraphs import AlignGraphConfig
from repro.storage.base import MemoryStore
from repro.storage.ceph import CephConfig, CephStore, SimulatedCephCluster
from repro.storage.diskmodel import WritebackDiskModel, raid0
from repro.storage.local import CountingStore, ModeledDiskStore

# Single-threaded kernels: pure-Python compute gains nothing from more
# threads (GIL), and fewer runnable threads keeps timing noise low.  The
# I/O-overlap machinery (separate reader/aligner/writer threads, bounded
# queues) still operates exactly as in the paper.  ``--backend`` swaps
# the compute substrate (see conftest) without touching this shape.
CONFIG = AlignGraphConfig(
    executor_threads=1, aligner_nodes=1, reader_nodes=1, parser_nodes=1,
    writer_nodes=1,
)


@pytest.fixture(scope="module")
def table1_config(backendize):
    return backendize(CONFIG)


def _agd_input_keys(dataset):
    return [
        entry.chunk_file(column)
        for entry in dataset.manifest.chunks
        for column in ("bases", "qual")
    ]


def _persona_run(dataset, aligner, store, config=CONFIG):
    modeled = AGDDataset(dataset.manifest, store)
    outcome = align_dataset(modeled, aligner, config=config,
                            output_store=store)
    return outcome


def _standalone_run(dataset, aligner, reference, store, config=CONFIG):
    return align_standalone(
        dataset.manifest, store, store, aligner,
        reference.manifest_entry(), config=config,
    )


@pytest.fixture(scope="module")
def calibration(bench_reads, bench_reference, bench_aligner, table1_config):
    """Unmetered reference runs: compute walls and true byte volumes."""
    from repro.formats.converters import import_reads

    dataset = import_reads(
        bench_reads, "bench", MemoryStore(), chunk_size=400,
        reference=bench_reference.manifest_entry(),
    )
    # Persona pure-compute run (counting I/O volumes as a side effect).
    persona_store = CountingStore(dataset.store)
    persona_pure = _persona_run(dataset, bench_aligner, persona_store,
                                table1_config)
    # Standalone pure-compute run.
    staging = MemoryStore()
    staged_bytes = stage_fastq_shards(dataset, staging)
    standalone_store = CountingStore(staging)
    standalone_pure = _standalone_run(
        dataset, bench_aligner, bench_reference, standalone_store,
        table1_config,
    )
    return {
        "dataset": dataset,
        "persona_wall": persona_pure.wall_seconds,
        "standalone_wall": standalone_pure.wall_seconds,
        "persona_read": persona_store.bytes_read,
        "persona_written": persona_store.bytes_written,
        "standalone_read": standalone_store.bytes_read,
        "standalone_written": standalone_store.bytes_written,
        "staged_bytes": staged_bytes,
    }


def test_table1_single_server_alignment(
    benchmark, bench_aligner, bench_reference, calibration, report,
    table1_config,
):
    cal = calibration
    dataset = cal["dataset"]
    standalone_io = cal["standalone_read"] + cal["standalone_written"]
    # Size the single disk so the standalone pipeline is ~1.6x I/O-bound
    # (the paper's measured regime); Persona's demand is ~3x smaller.
    single_bw = standalone_io / (1.63 * cal["standalone_wall"])
    network_bw = standalone_io / (1.54 * cal["standalone_wall"])

    def single_disk():
        return WritebackDiskModel(
            read_bandwidth=single_bw, write_bandwidth=single_bw,
            dirty_limit=max(64 * 1024, cal["standalone_written"] // 5),
        )

    results = {}

    # --- Disk (single) -----------------------------------------------------
    staging = MemoryStore()
    stage_fastq_shards(dataset, staging)
    sa_store = ModeledDiskStore(single_disk(), backing=staging)
    sa = _standalone_run(dataset, bench_aligner, bench_reference, sa_store,
                         table1_config)
    sa_store.flush()
    pe_store = ModeledDiskStore(single_disk(), backing=dataset.store)
    pe = _persona_run(dataset, bench_aligner, pe_store, table1_config)
    pe_store.flush()
    results["single"] = (sa.wall_seconds, pe.wall_seconds)

    # --- Disk (RAID0 x6) ---------------------------------------------------
    staging = MemoryStore()
    stage_fastq_shards(dataset, staging)
    sa_store = ModeledDiskStore(raid0(6, single_bw), backing=staging)
    sa = _standalone_run(dataset, bench_aligner, bench_reference, sa_store,
                         table1_config)
    pe_store = ModeledDiskStore(raid0(6, single_bw), backing=dataset.store)
    pe = _persona_run(dataset, bench_aligner, pe_store, table1_config)
    results["raid"] = (sa.wall_seconds, pe.wall_seconds)

    # --- Network (Ceph-like object store) -----------------------------------
    def cluster():
        return SimulatedCephCluster(CephConfig(
            num_nodes=7, disks_per_node=10,
            disk_bandwidth=network_bw,  # per-OSD-node: ample
            network_bandwidth=network_bw,
        ))

    c1 = cluster()
    staging = MemoryStore()
    stage_fastq_shards(dataset, staging)
    for key in staging.keys():
        c1._objects.put("sa/" + key, staging.get(key))
    sa = _standalone_run(dataset, bench_aligner, bench_reference,
                         CephStore(c1, prefix="sa/"), table1_config)
    c2 = cluster()
    for key in _agd_input_keys(dataset):
        c2._objects.put("pe/" + key, dataset.store.get(key))
    pe = _persona_run(dataset, bench_aligner, CephStore(c2, prefix="pe/"),
                      table1_config)
    results["network"] = (sa.wall_seconds, pe.wall_seconds)

    # ---------------------------------------------------------------- report
    rep = report("table1_alignment_io",
                 "Table 1 — Dataset Alignment Time, Single Server")
    s, r, n = results["single"], results["raid"], results["network"]
    read_ratio = cal["standalone_read"] / cal["persona_read"]
    write_ratio = cal["standalone_written"] / cal["persona_written"]
    rep.row("Disk(Single) speedup (standalone/Persona)", "1.63x",
            f"{s[0] / s[1]:.2f}x", f"({s[0]:.2f}s vs {s[1]:.2f}s)")
    rep.row("Disk(RAID) speedup", "0.99x", f"{r[0] / r[1]:.2f}x",
            f"({r[0]:.2f}s vs {r[1]:.2f}s)")
    rep.row("Network speedup", "1.54x", f"{n[0] / n[1]:.2f}x",
            f"({n[0]:.2f}s vs {n[1]:.2f}s)")
    rep.row("Data read ratio (standalone/Persona)", "1.2x",
            f"{read_ratio:.2f}x",
            f"({cal['standalone_read']} B vs {cal['persona_read']} B)")
    rep.row("Data written ratio", "16.75x", f"{write_ratio:.2f}x",
            f"({cal['standalone_written']} B vs {cal['persona_written']} B)")
    rep.add()
    rep.add("shape checks:")
    rep.check("Persona faster on bandwidth-starved single disk (>1.2x)",
              s[0] / s[1] > 1.2)
    rep.check("parity on RAID0 (within 20%)", 0.80 < r[0] / r[1] < 1.25)
    rep.check("Persona faster on network storage (>1.15x)",
              n[0] / n[1] > 1.15)
    rep.check("write-volume advantage about an order of magnitude (>8x)",
              write_ratio > 8)
    rep.check("read volumes comparable (<1.6x apart)", read_ratio < 1.6)
    rep.finish()

    # pytest-benchmark timer: the CPU-bound Persona RAID0 configuration.
    benchmark.pedantic(
        lambda: _persona_run(
            dataset, bench_aligner,
            ModeledDiskStore(raid0(6, single_bw), backing=dataset.store),
            table1_config,
        ),
        rounds=1, iterations=1,
    )
