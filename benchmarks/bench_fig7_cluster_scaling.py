"""Figure 7 — Cluster scaling: actual to 32 nodes, simulated to 100 (§5.5).

Paper result: Persona "scales linearly up to the available 32 nodes",
reaching 1.353 Gbases/s and aligning the 223M-read genome in ~16.7 s; the
validated simulation shows "the Ceph cluster scales to ~60 nodes without
loss of efficiency" after which result-write bandwidth limits throughput.

Two parts here:

1. *Distribution check (real execution)* — the actual multi-server
   pipeline (manifest server + N in-process servers over a simulated Ceph
   store) must process every chunk exactly once with balanced completion.
   GIL-bound compute cannot show aggregate speedup, so throughput scaling
   is not asserted on this part (§DESIGN.md substitutions).
2. *Scaling curve (discrete-event simulation)* — the paper's own Fig. 7
   methodology ("replace the CPU-intensive SNAP algorithm with a stub
   that simply suspends execution for the mean time required to align a
   chunk"), run at the paper's calibration.
"""

from __future__ import annotations

from repro.cluster.multiserver import run_multi_server_alignment
from repro.cluster.simulation import (
    ClusterSimParams,
    saturation_point,
    scaling_series,
    simulate_cluster,
)
from repro.core.subgraphs import AlignGraphConfig
from repro.storage.ceph import CephConfig, CephStore, SimulatedCephCluster


def test_fig7_cluster_scaling(
    benchmark, bench_reads, bench_reference, bench_aligner, report,
):
    from repro.formats.converters import import_reads

    rep = report("fig7_cluster_scaling",
                 "Figure 7 — Cluster throughput scaling")

    # --- Part 1: real multi-server distribution over simulated Ceph.
    ceph = SimulatedCephCluster(CephConfig(
        disk_bandwidth=2e9, network_bandwidth=8e9))
    input_store = CephStore(ceph, prefix="in/")
    dataset = import_reads(
        bench_reads[:2000], "fig7", input_store, chunk_size=50,
        reference=bench_reference.manifest_entry(),
    )
    outcome = run_multi_server_alignment(
        dataset,
        aligner_factory=lambda sid: bench_aligner,
        output_store_factory=lambda sid: CephStore(ceph, prefix="out/"),
        num_servers=4,
        config=AlignGraphConfig(executor_threads=1),
    )
    chunk_counts = sorted(s.chunks for s in outcome.servers)
    rep.add("part 1 — actual 4-server run over simulated Ceph:")
    rep.add(f"  chunks per server: {chunk_counts} "
            f"(total {outcome.total_chunks}/{dataset.num_chunks})")
    rep.add(f"  completion imbalance: {outcome.completion_imbalance:.2f} "
            f"(paper: 'no measurable completion-time imbalance')")
    rep.add()

    # --- Part 2: discrete-event simulation at paper calibration.
    params = ClusterSimParams()
    node_counts = [1, 2, 4, 8, 16, 32, 48, 60, 64, 80, 100]
    series = scaling_series(node_counts, params)
    rep.add("part 2 — simulation at paper calibration "
            "(45.45 Mbases/s/node, 6 GB/s Ceph read):")
    rep.add(f"{'nodes':>6} {'Gbases/s':>10} {'makespan':>10} "
            f"{'efficiency':>11}")
    for result in series:
        efficiency = result.bases_per_second / (
            result.nodes * params.node_align_rate
        )
        rep.add(
            f"{result.nodes:>6} {result.bases_per_second / 1e9:>10.3f} "
            f"{result.makespan_seconds:>9.1f}s {efficiency:>10.1%}"
        )
    r32 = simulate_cluster(32, params)
    r1 = simulate_cluster(1, params)
    knee = saturation_point(params, max_nodes=100)
    rep.add()
    rep.row("32-node throughput", "1.353 Gbases/s",
            f"{r32.bases_per_second / 1e9:.3f} Gbases/s")
    rep.row("32-node genome time", "~16.7 s",
            f"{r32.makespan_seconds:.1f} s")
    rep.row("saturation knee", "~60 nodes", f"{knee} nodes")
    rep.add()
    rep.add("shape checks:")
    rep.check("every chunk aligned exactly once across servers",
              outcome.total_chunks == dataset.num_chunks)
    rep.check("all servers participated (dynamic queue balancing)",
              min(chunk_counts) > 0)
    rep.check("linear speedup to 32 nodes (>=30x)",
              r32.bases_per_second / r1.bases_per_second >= 30)
    rep.check("32-node throughput within 15% of paper's 1.353 Gb/s",
              abs(r32.bases_per_second / 1e9 - 1.353) < 0.2)
    rep.check("genome time at 32 nodes within 3s of paper's 16.7s",
              abs(r32.makespan_seconds - 16.7) < 3.0)
    rep.check("knee within [50, 70] nodes", 50 <= knee <= 70)
    r100 = simulate_cluster(100, params)
    r60 = simulate_cluster(60, params)
    rep.check("plateau beyond the knee (<10% gain 60->100 nodes)",
              r100.bases_per_second < 1.1 * r60.bases_per_second)
    rep.finish()

    benchmark.pedantic(
        lambda: scaling_series([1, 32, 100], params), rounds=3, iterations=1
    )
