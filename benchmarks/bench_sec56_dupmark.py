"""§5.6 — Duplicate marking throughput.

Paper result: "Samblaster can mark duplicates at 364,963 reads per
second, while Persona ... can mark duplicates at 1.36 million reads per
second" (~3.7x), and "Persona also uses less I/O since only the results
column needs to be read/written from the AGD dataset."

Shape to reproduce: Persona (results column only) is severalfold faster
than the samblaster-like baseline (full SAM rows); both mark exactly the
same duplicate set; Persona touches only the results column.
"""

from __future__ import annotations

import io
import time

import pytest

from repro.align.result import FLAG_DUPLICATE
from repro.core.baselines import SamblasterLike, SamblasterReport
from repro.core.dupmark import DupmarkStats, mark_duplicates
from repro.core.pipelines import align_dataset
from repro.core.subgraphs import AlignGraphConfig
from repro.formats.converters import export_sam
from repro.formats.sam import read_sam
from repro.storage.base import MemoryStore
from repro.storage.local import CountingStore


@pytest.fixture(scope="module")
def marked_world(bench_reads, bench_reference, bench_aligner):
    from repro.formats.converters import import_reads

    dataset = import_reads(
        bench_reads, "dup", MemoryStore(), chunk_size=400,
        reference=bench_reference.manifest_entry(),
    )
    align_dataset(dataset, bench_aligner,
                  config=AlignGraphConfig(executor_threads=1))
    sam_buf = io.BytesIO()
    export_sam(dataset, sam_buf)
    return dataset, sam_buf.getvalue()


def test_sec56_duplicate_marking(benchmark, marked_world, report):
    dataset, sam_blob = marked_world

    # Persona: only the results column, through a counting store.
    counting = CountingStore(dataset.store)
    from repro.agd.dataset import AGDDataset

    counted_ds = AGDDataset(dataset.manifest, counting)
    stats = DupmarkStats()
    start = time.monotonic()
    mark_duplicates(counted_ds, stats)
    persona_seconds = time.monotonic() - start
    persona_rate = stats.records / persona_seconds

    # Baseline: samblaster-like over SAM text.
    baseline_report = SamblasterReport()
    start = time.monotonic()
    marked_sam = SamblasterLike().mark(
        sam_blob, dataset.manifest.reference, baseline_report
    )
    baseline_seconds = time.monotonic() - start
    baseline_rate = baseline_report.records / baseline_seconds

    # Agreement on the duplicate set.
    _, sam_records = read_sam(io.BytesIO(marked_sam))
    baseline_marked = {
        r.qname for r in sam_records if r.flag & FLAG_DUPLICATE
    }
    persona_marked = {
        m.split()[0].decode()
        for m, r in zip(dataset.read_column("metadata"),
                        dataset.read_column("results"))
        if r.is_duplicate
    }

    rep = report("sec56_dupmark", "Sec 5.6 — Duplicate marking throughput")
    rep.row("Persona rate", "1.36 M reads/s", f"{persona_rate:,.0f} reads/s")
    rep.row("Samblaster-like rate", "365 K reads/s",
            f"{baseline_rate:,.0f} reads/s")
    rep.row("speedup", "3.7x", f"{persona_rate / baseline_rate:.2f}x")
    rep.add(f"duplicates marked: {stats.duplicates_marked} "
            f"(baseline {baseline_report.duplicates_marked})")
    io_note = (
        f"Persona I/O: read {counting.bytes_read} B, "
        f"wrote {counting.bytes_written} B (results column only); "
        f"baseline parsed {len(sam_blob)} B of SAM"
    )
    rep.add(io_note)
    rep.add()
    rep.add("shape checks:")
    rep.check("both tools mark the identical duplicate set",
              baseline_marked == persona_marked)
    rep.check("Persona at least 1.8x faster",
              persona_rate / baseline_rate > 1.8)
    rep.check("Persona read less than the baseline (results column only)",
              counting.bytes_read < len(sam_blob))
    rep.check("some duplicates exist in the workload",
              stats.duplicates_marked > 50)
    rep.finish()

    benchmark.pedantic(
        lambda: mark_duplicates(AGDDataset(dataset.manifest, dataset.store)),
        rounds=1, iterations=1,
    )
