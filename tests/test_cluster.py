"""Tests for the cluster substrate: manifest server, multi-server runs,
discrete-event simulation, thread scaling, and the TCO model."""

import pytest

from repro.cluster.manifest_server import ManifestServer, partition_manifest
from repro.cluster.multiserver import run_multi_server_alignment
from repro.cluster.simulation import (
    ClusterSimParams,
    ThreadScalingParams,
    bwa_standalone_rate,
    persona_bwa_rate,
    persona_snap_rate,
    saturation_point,
    scaling_series,
    simulate_cluster,
    snap_standalone_rate,
    thread_scaling_table,
)
from repro.cluster.tco import (
    CostInputs,
    cluster_tco,
    glacier_cost_per_genome,
    national_scale_tco,
    single_server_tco,
    table3_rows,
)
from repro.core.subgraphs import AlignGraphConfig
from repro.storage.base import MemoryStore


class TestManifestServer:
    def test_publish_and_drain(self, dataset):
        server = ManifestServer(dataset.manifest)
        assert server.publish() == dataset.num_chunks
        drained = list(server.queue)
        assert drained == dataset.manifest.chunks

    def test_publish_idempotent(self, dataset):
        server = ManifestServer(dataset.manifest)
        server.publish()
        server.publish()
        assert len(list(server.queue)) == dataset.num_chunks

    def test_reset_rearms_for_second_epoch(self, dataset):
        """Regression: the once-and-close publish used to make a server
        instance single-use; reset() re-arms it per stage/epoch."""
        server = ManifestServer(dataset.manifest)
        server.publish()
        first_queue = server.queue
        assert len(list(first_queue)) == dataset.num_chunks
        fresh = server.reset()
        assert fresh is server.queue and fresh is not first_queue
        assert server.publish() == dataset.num_chunks
        assert len(list(server.queue)) == dataset.num_chunks
        # Old-epoch consumers see their (drained, closed) queue.
        assert first_queue.closed and len(first_queue) == 0

    def test_publish_after_reset_is_idempotent_within_epoch(self, dataset):
        server = ManifestServer(dataset.manifest)
        server.publish()
        server.reset()
        server.publish()
        server.publish()
        assert len(list(server.queue)) == dataset.num_chunks

    def test_partition_static(self, dataset):
        parts = partition_manifest(dataset.manifest, 3)
        assert sum(len(p) for p in parts) == dataset.num_chunks
        flat = [e for p in parts for e in p]
        assert {e.path for e in flat} == {
            e.path for e in dataset.manifest.chunks
        }

    def test_partition_invalid(self, dataset):
        with pytest.raises(ValueError):
            partition_manifest(dataset.manifest, 0)


class TestMultiServer:
    def test_distribution_correctness(self, dataset, reference):
        """Every chunk aligned exactly once across servers (§5.5)."""
        from repro.core.pipelines import build_snap_aligner

        shared_aligner = build_snap_aligner(reference)
        output = MemoryStore()
        outcome = run_multi_server_alignment(
            dataset,
            aligner_factory=lambda sid: shared_aligner,
            output_store_factory=lambda sid: output,
            num_servers=3,
            config=AlignGraphConfig(executor_threads=1, aligner_nodes=1,
                                    reader_nodes=1, parser_nodes=1),
        )
        assert outcome.total_chunks == dataset.num_chunks
        assert outcome.total_records == dataset.total_records
        assert len(outcome.servers) == 3
        written = {k for k in output.keys() if k.endswith(".results")}
        assert written == {
            e.chunk_file("results") for e in dataset.manifest.chunks
        }

    def test_results_match_single_server(self, dataset, reference, snap_aligner):
        from repro.agd.chunk import read_chunk
        from repro.core.pipelines import align_dataset

        output = MemoryStore()
        run_multi_server_alignment(
            dataset,
            aligner_factory=lambda sid: snap_aligner,
            output_store_factory=lambda sid: output,
            num_servers=2,
            config=AlignGraphConfig(executor_threads=1),
        )
        single = MemoryStore()
        align_dataset(dataset, snap_aligner, output_store=single,
                      config=AlignGraphConfig(executor_threads=1))
        for entry in dataset.manifest.chunks:
            key = entry.chunk_file("results")
            multi_records = read_chunk(output.get(key)).records
            single_records = read_chunk(single.get(key)).records
            assert multi_records == single_records

    def test_invalid_server_count(self, dataset):
        with pytest.raises(ValueError):
            run_multi_server_alignment(
                dataset, lambda s: None, lambda s: MemoryStore(), 0
            )


class TestClusterSimulation:
    def test_linear_region(self):
        params = ClusterSimParams()
        r1 = simulate_cluster(1, params)
        r32 = simulate_cluster(32, params)
        speedup = r32.bases_per_second / r1.bases_per_second
        assert 30 < speedup <= 32.5  # linear to 32 nodes (§5.5)

    def test_paper_headline_numbers(self):
        """32 nodes: ~1.35 Gbases/s, genome in ~16.7 s (§5.5)."""
        result = simulate_cluster(32, ClusterSimParams())
        assert 1.2e9 < result.bases_per_second < 1.6e9
        assert 13 < result.makespan_seconds < 19

    def test_saturation_knee_near_60(self):
        knee = saturation_point(ClusterSimParams(), max_nodes=100)
        assert 50 <= knee <= 70

    def test_plateau_beyond_knee(self):
        params = ClusterSimParams()
        r60 = simulate_cluster(60, params)
        r100 = simulate_cluster(100, params)
        assert r100.bases_per_second < 1.1 * r60.bases_per_second

    def test_no_imbalance_in_linear_region(self):
        result = simulate_cluster(16, ClusterSimParams())
        assert result.imbalance < 1.1

    def test_all_chunks_processed(self):
        params = ClusterSimParams(num_chunks=500)
        result = simulate_cluster(7, params)
        assert sum(result.chunks_per_node) == 500

    def test_series(self):
        series = scaling_series([1, 2, 4], ClusterSimParams(num_chunks=100))
        assert [r.nodes for r in series] == [1, 2, 4]
        rates = [r.bases_per_second for r in series]
        assert rates == sorted(rates)

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            simulate_cluster(0)


class TestThreadScaling:
    def test_linear_to_physical_cores(self):
        params = ThreadScalingParams()
        r12 = snap_standalone_rate(12, params)
        r24 = snap_standalone_rate(24, params)
        assert r24 / r12 == pytest.approx(2.0, rel=0.01)

    def test_hyperthread_yield(self):
        """§5.4: 'the 2nd hyperthread increases the alignment rate of a
        core by 32%'."""
        params = ThreadScalingParams()
        full_ht = persona_snap_rate(48, params)
        physical = persona_snap_rate(24, params)
        assert full_ht / physical == pytest.approx(1.32, rel=0.01)

    def test_snap_drop_at_full_subscription(self):
        params = ThreadScalingParams()
        assert snap_standalone_rate(48, params) < snap_standalone_rate(47, params)

    def test_persona_no_drop(self):
        params = ThreadScalingParams()
        assert persona_snap_rate(48, params) >= persona_snap_rate(47, params)

    def test_persona_overhead_small(self):
        """§1: 'negligible framework overheads' (~1%)."""
        params = ThreadScalingParams()
        ratio = persona_snap_rate(24, params) / snap_standalone_rate(24, params)
        assert 0.98 < ratio < 1.0

    def test_bwa_flattens_beyond_physical(self):
        params = ThreadScalingParams()
        r24 = bwa_standalone_rate(24, params)
        r48 = bwa_standalone_rate(48, params)
        assert r48 < 1.15 * r24  # memory ceiling

    def test_persona_bwa_scales_better_with_ht(self):
        """§5.4: Persona's BWA 'scales slightly better with more threads
        than the standalone program'."""
        params = ThreadScalingParams()
        assert persona_bwa_rate(48, params) > bwa_standalone_rate(48, params)

    def test_table_shape(self):
        rows = thread_scaling_table([1, 24, 48])
        assert len(rows) == 3
        assert rows[0]["snap_perfect"] == pytest.approx(
            ThreadScalingParams().single_thread_rate
        )


class TestTCO:
    def test_table3_capex(self):
        """Table 3: $507K + $53K + $53K = $613K."""
        report = cluster_tco()
        assert report.compute_capex == pytest.approx(507_000, rel=0.01)
        assert report.storage_capex == pytest.approx(53_025, rel=0.01)
        assert report.fabric_capex == pytest.approx(53_064, rel=0.01)
        assert report.total_capex == pytest.approx(613_089, rel=0.001)

    def test_table3_tco_and_cost(self):
        report = cluster_tco()
        assert report.tco == pytest.approx(943_000, rel=0.01)
        # 6.07 cents in the paper; our 144/day-per-server model gives ~5.98.
        assert 0.055 < report.cost_per_alignment < 0.065

    def test_storage_cost_per_genome(self):
        """§6.1: 'the cost per genome for storage is $8.83'."""
        report = cluster_tco()
        assert report.storage_cost_per_genome == pytest.approx(8.83, rel=0.01)

    def test_genomes_capacity(self):
        """Table 3: '126 TB of usable capacity, corresponding to
        approximately 6,000 sequenced genomes'."""
        report = cluster_tco()
        assert report.genomes_capacity == pytest.approx(6000, rel=0.01)

    def test_single_server(self):
        """§6.1: single server ~144 alignments/day at ~4.1 cents."""
        report = single_server_tco()
        assert report.alignments_per_day == pytest.approx(144)
        assert report.cost_per_alignment == pytest.approx(0.041, rel=0.03)

    def test_glacier(self):
        """§6.1: '$6.72' for 5 years of one genome on Glacier."""
        assert glacier_cost_per_genome() == pytest.approx(6.72, rel=0.001)

    def test_storage_cheaper_than_compute_total_but_dominant_per_genome(self):
        """§6.1: storage cost per genome is 'two orders of magnitude
        higher than the alignment cost'."""
        report = cluster_tco()
        ratio = report.storage_cost_per_genome / report.cost_per_alignment
        assert 100 < ratio < 200

    def test_national_scale_ratio(self):
        report = national_scale_tco(genomes_per_day=50_000)
        compute = report.compute_capex / CostInputs().compute_server_cost
        storage = report.storage_capex / CostInputs().storage_server_cost
        assert compute / storage <= 60 / 7 + 1

    def test_national_scale_invalid(self):
        with pytest.raises(ValueError):
            national_scale_tco(0)

    def test_table3_rows_printable(self):
        rows = table3_rows()
        assert rows[0]["item"] == "Compute Server"
        assert rows[-1]["total"] < 1.0  # cents row
