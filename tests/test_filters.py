"""Tests for dataset filtering."""

import pytest

from repro.agd.manifest import ManifestError
from repro.core.filters import (
    FilterStats,
    all_of,
    by_min_mapq,
    by_region,
    drop_duplicates,
    filter_dataset,
    mapped_only,
)
from repro.core.dupmark import mark_duplicates
from repro.storage.base import MemoryStore


class TestPredicates:
    def test_by_min_mapq(self, aligned_results):
        predicate = by_min_mapq(40)
        kept = [r for r in aligned_results if predicate(r)]
        assert kept
        assert all(r.mapq >= 40 for r in kept)

    def test_mapped_only(self, aligned_results):
        predicate = mapped_only()
        assert all(predicate(r) == r.is_aligned for r in aligned_results)

    def test_by_region(self, aligned_results):
        predicate = by_region(0, 0, 5000)
        for r in aligned_results:
            if predicate(r):
                assert r.contig_index == 0 and 0 <= r.position < 5000

    def test_by_region_empty_rejected(self):
        with pytest.raises(ValueError):
            by_region(0, 10, 10)

    def test_all_of(self, aligned_results):
        combined = all_of(mapped_only(), by_min_mapq(30))
        for r in aligned_results:
            assert combined(r) == (r.is_aligned and r.mapq >= 30)


class TestFilterDataset:
    def test_filter_by_mapq(self, aligned_dataset):
        stats = FilterStats()
        out = filter_dataset(
            aligned_dataset, by_min_mapq(30), MemoryStore(), stats=stats
        )
        assert stats.examined == aligned_dataset.total_records
        assert out.total_records == stats.kept
        assert stats.dropped == stats.examined - stats.kept
        for r in out.read_column("results"):
            assert r.mapq >= 30

    def test_rows_stay_aligned(self, aligned_dataset):
        out = filter_dataset(
            aligned_dataset, by_region(0, 0, 10_000), MemoryStore()
        )
        results = out.read_column("results")
        bases = out.read_column("bases")
        metas = out.read_column("metadata")
        assert len(results) == len(bases) == len(metas)
        # Each surviving row must carry the same (metadata, bases, result)
        # triple it had in the input — keyed by the unique read name.
        original = {
            m: (b, r.to_bytes())
            for m, b, r in zip(
                aligned_dataset.read_column("metadata"),
                aligned_dataset.read_column("bases"),
                aligned_dataset.read_column("results"),
            )
        }
        for m, b, r in zip(metas, bases, results):
            assert original[m] == (b, r.to_bytes())

    def test_drop_duplicates_filter(self, aligned_dataset):
        mark_duplicates(aligned_dataset)
        before = aligned_dataset.read_column("results")
        dup_count = sum(r.is_duplicate for r in before)
        assert dup_count > 0
        out = filter_dataset(
            aligned_dataset, drop_duplicates(), MemoryStore()
        )
        assert out.total_records == len(before) - dup_count

    def test_requires_results(self, dataset):
        with pytest.raises(ValueError):
            filter_dataset(dataset, mapped_only(), MemoryStore())

    def test_empty_result_rejected(self, aligned_dataset):
        with pytest.raises(ManifestError):
            filter_dataset(
                aligned_dataset, lambda r: False, MemoryStore()
            )

    def test_reference_propagated(self, aligned_dataset):
        out = filter_dataset(aligned_dataset, mapped_only(), MemoryStore())
        assert out.manifest.reference == aligned_dataset.manifest.reference
