"""Tests for the BAM-like binary codec."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.bam import (
    BamFormatError,
    decode_record,
    encode_record,
    iter_bam,
    read_bam,
    write_bam,
)
from repro.formats.sam import SamHeader, SamRecord


def make_record(**overrides) -> SamRecord:
    fields = dict(
        qname="r1", flag=0, rname="chr1", pos=100, mapq=60, cigar="4M",
        rnext="*", pnext=0, tlen=0, seq=b"ACGT", qual=b"IIII",
    )
    fields.update(overrides)
    return SamRecord(**fields)


HEADER = SamHeader(contigs=[{"name": "chr1", "length": 10_000},
                            {"name": "chr2", "length": 5_000}])
CONTIGS = ["chr1", "chr2"]
INDEX = {"chr1": 0, "chr2": 1}

records_strategy = st.lists(
    st.builds(
        lambda name, pos, flag, seq: make_record(
            qname=name, pos=pos, flag=flag,
            seq=seq, qual=b"I" * len(seq), cigar=f"{len(seq)}M",
        ),
        name=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1, max_size=20,
        ),
        pos=st.integers(min_value=1, max_value=9_000),
        flag=st.sampled_from([0, 16, 1024, 1040]),
        seq=st.binary(min_size=1, max_size=50).map(
            lambda b: bytes(b"ACGT"[x % 4] for x in b)
        ),
    ),
    max_size=30,
)


class TestRecordCodec:
    def test_roundtrip(self):
        record = make_record(cigar="2M1I1M", tlen=-300, pnext=50, rnext="chr2")
        body = encode_record(record, INDEX)
        back = decode_record(body[4:], CONTIGS)
        assert back.qname == record.qname
        assert back.pos == record.pos
        assert back.cigar == record.cigar
        assert back.seq == record.seq
        assert back.qual == record.qual
        assert back.tlen == record.tlen

    def test_odd_length_sequence(self):
        record = make_record(seq=b"ACGTA", qual=b"IIIII", cigar="5M")
        back = decode_record(encode_record(record, INDEX)[4:], CONTIGS)
        assert back.seq == b"ACGTA"

    def test_unmapped(self):
        record = make_record(rname="*", pos=0, flag=4, cigar="")
        back = decode_record(encode_record(record, INDEX)[4:], CONTIGS)
        assert back.rname == "*" and back.is_unmapped

    def test_missing_qualities(self):
        record = make_record(qual=b"")
        back = decode_record(encode_record(record, INDEX)[4:], CONTIGS)
        assert back.qual == b""

    def test_name_too_long(self):
        with pytest.raises(BamFormatError):
            encode_record(make_record(qname="x" * 300), INDEX)

    def test_truncated(self):
        body = encode_record(make_record(), INDEX)[4:]
        with pytest.raises(BamFormatError):
            decode_record(body[:10], CONTIGS)


class TestFile:
    def test_roundtrip(self):
        records = [make_record(qname=f"r{i}", pos=i + 1) for i in range(100)]
        buf = io.BytesIO()
        nbytes = write_bam(HEADER, records, buf)
        assert nbytes == len(buf.getvalue())
        buf.seek(0)
        header, back = read_bam(buf)
        assert back == records
        assert [c["name"] for c in header.contigs] == CONTIGS

    def test_multiblock(self):
        # Force multiple BGZF-style blocks with many records.
        records = [
            make_record(qname=f"read-{i}", seq=b"ACGT" * 25,
                        qual=b"I" * 100, cigar="100M")
            for i in range(3000)
        ]
        buf = io.BytesIO()
        write_bam(HEADER, records, buf)
        buf.seek(0)
        _, back = read_bam(buf)
        assert len(back) == 3000
        assert back[0] == records[0]
        assert back[-1] == records[-1]

    def test_iter_streaming(self):
        records = [make_record(qname=f"r{i}") for i in range(50)]
        buf = io.BytesIO()
        write_bam(HEADER, records, buf)
        buf.seek(0)
        assert list(iter_bam(buf)) == records

    def test_compression_effective(self):
        records = [make_record(qname=f"r{i}") for i in range(1000)]
        buf = io.BytesIO()
        write_bam(HEADER, records, buf)
        from repro.formats.sam import sam_bytes

        sam_size = len(sam_bytes(HEADER, records))
        assert len(buf.getvalue()) < sam_size

    def test_missing_header_rejected(self):
        with pytest.raises(BamFormatError):
            read_bam(io.BytesIO(b"junk data not a bam file"))

    def test_truncated_block_rejected(self):
        records = [make_record()]
        buf = io.BytesIO()
        write_bam(HEADER, records, buf)
        blob = buf.getvalue()
        with pytest.raises(BamFormatError):
            read_bam(io.BytesIO(blob[: len(blob) - 3]))

    @given(records_strategy)
    @settings(max_examples=25)
    def test_roundtrip_property(self, records):
        buf = io.BytesIO()
        write_bam(HEADER, records, buf)
        buf.seek(0)
        _, back = read_bam(buf)
        assert back == records
