"""Tests for repro.genome.reference: contigs, coordinates, FASTA I/O."""

import io

import pytest

from repro.genome.reference import (
    Contig,
    ReferenceGenome,
    parse_fasta,
    read_fasta,
    reference_from_sequences,
    write_fasta,
)


@pytest.fixture()
def genome():
    return reference_from_sequences(
        [("chr1", b"ACGT" * 10), ("chr2", b"TTTT" * 5), ("chrM", b"GG")]
    )


class TestContig:
    def test_length(self):
        assert len(Contig("c", b"ACGT")) == 4

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Contig("", b"ACGT")

    def test_invalid_bases_rejected(self):
        with pytest.raises(ValueError):
            Contig("c", b"ACGT!")


class TestReferenceGenome:
    def test_total_length(self, genome):
        assert len(genome) == 40 + 20 + 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            reference_from_sequences([("a", b"AC"), ("a", b"GT")])

    def test_names(self, genome):
        assert genome.names == ["chr1", "chr2", "chrM"]

    def test_contig_lookup(self, genome):
        assert genome.contig("chr2").sequence == b"TTTT" * 5

    def test_contig_lookup_missing(self, genome):
        with pytest.raises(KeyError):
            genome.contig("chrX")

    def test_concatenated(self, genome):
        assert genome.concatenated() == b"ACGT" * 10 + b"TTTT" * 5 + b"GG"

    def test_global_local_roundtrip(self, genome):
        for name, local in (("chr1", 0), ("chr1", 39), ("chr2", 0),
                            ("chr2", 19), ("chrM", 1)):
            g = genome.to_global(name, local)
            assert genome.to_local(g) == (name, local)

    def test_to_global_bounds(self, genome):
        with pytest.raises(ValueError):
            genome.to_global("chr1", 40)
        with pytest.raises(KeyError):
            genome.to_global("nope", 0)

    def test_to_local_bounds(self, genome):
        with pytest.raises(ValueError):
            genome.to_local(len(genome))
        with pytest.raises(ValueError):
            genome.to_local(-1)

    def test_fetch(self, genome):
        assert genome.fetch(0, 4) == b"ACGT"
        assert genome.fetch(40, 4) == b"TTTT"

    def test_fetch_clamps_at_end(self, genome):
        assert genome.fetch(len(genome) - 1, 10) == b"G"

    def test_fetch_negative_rejected(self, genome):
        with pytest.raises(ValueError):
            genome.fetch(-1, 4)

    def test_manifest_entry(self, genome):
        entries = genome.manifest_entry()
        assert entries[0] == {"name": "chr1", "length": 40}
        assert len(entries) == 3

    def test_contig_start(self, genome):
        assert genome.contig_start("chr1") == 0
        assert genome.contig_start("chr2") == 40
        assert genome.contig_start("chrM") == 60


class TestFasta:
    def test_roundtrip(self, genome, tmp_path):
        path = tmp_path / "ref.fasta"
        write_fasta(genome, path, width=7)
        back = read_fasta(path)
        assert back.names == genome.names
        assert back.concatenated() == genome.concatenated()

    def test_parse_basic(self):
        fasta = b">c1 description ignored\nACGT\nACGT\n>c2\nTT\n"
        genome = parse_fasta(io.BytesIO(fasta))
        assert genome.names == ["c1", "c2"]
        assert genome.contig("c1").sequence == b"ACGTACGT"

    def test_parse_lowercase_upcased(self):
        genome = parse_fasta(io.BytesIO(b">c\nacgt\n"))
        assert genome.contig("c").sequence == b"ACGT"

    def test_parse_blank_lines_skipped(self):
        genome = parse_fasta(io.BytesIO(b">c\nAC\n\nGT\n"))
        assert genome.contig("c").sequence == b"ACGT"

    def test_parse_no_header_rejected(self):
        with pytest.raises(ValueError):
            parse_fasta(io.BytesIO(b"ACGT\n"))

    def test_parse_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_fasta(io.BytesIO(b""))
