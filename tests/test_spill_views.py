"""Zero-copy spill & result plane: view-adopted sort spills and
raw-framed process-backend results.

Raw (identity-codec) scratch framing lets phase 2 of the external sort
``mmap`` spill files and decode them in place (``spill_view_bytes``
grows, ``decode_copies`` stays 0); the gzip fallback remains
byte-identical.  ``ProcessBackend`` with shm maps large task results in
place instead of copying them out of their one-shot segments, releasing
the leases one dispatch later (the deferred-ack discipline).  Both
planes must leak nothing: no ``/dev/shm`` entries, no pinned scratch
mappings.
"""

from __future__ import annotations

import gc
import os
import subprocess
import sys
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.agd.chunk import read_chunk, write_chunk
from repro.agd.compression import NONE
from repro.align.result import AlignmentResult
from repro.agd.dataset import AGDDataset
from repro.core.sort import (
    SortConfig,
    SpillFileRef,
    SpillLease,
    local_scratch_root,
    open_spill_ref,
    sort_dataset,
    verify_sorted,
)
from repro.dataflow import shm as shm_plane
from repro.dataflow.backends import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    payload_nbytes,
)
from repro.storage.base import DirectoryStore, MemoryStore

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

needs_shm = pytest.mark.skipif(
    not shm_plane.shm_available(), reason="POSIX shared memory unavailable"
)


def make_aligned_dataset(positions, chunk_size=4):
    """A tiny aligned dataset with given (contig, position) results."""
    n = len(positions)
    results = [
        AlignmentResult(flag=0, contig_index=c, position=p, cigar=b"4M")
        if p >= 0 else AlignmentResult()
        for c, p in positions
    ]
    return AGDDataset.create(
        "mini",
        {
            "bases": [b"ACGT"] * n,
            "qual": [b"IIII"] * n,
            "metadata": [f"r{i:05d}".encode() for i in range(n)],
            "results": results,
        },
        MemoryStore(),
        chunk_size=chunk_size,
    )


POSITIONS = [
    ((i * 7919) % 3, (i * 104729) % 100_000) for i in range(60)
]


def store_bytes(store, dataset) -> "dict[str, bytes]":
    """Every chunk file of a sorted dataset, keyed by file name."""
    return {
        entry.chunk_file(column): bytes(store.get(entry.chunk_file(column)))
        for entry in dataset.manifest.chunks
        for column in dataset.manifest.columns
    }


# ------------------------------------------------------- negotiation


class TestRawScratchNegotiation:
    def test_directory_store_resolves_to_root(self, tmp_path):
        assert local_scratch_root(DirectoryStore(tmp_path)) == tmp_path

    def test_memory_store_has_no_root(self):
        assert local_scratch_root(MemoryStore()) is None

    def test_auto_picks_raw_only_on_local_scratch(self, tmp_path):
        config = SortConfig()
        assert config.resolve_scratch_codec(DirectoryStore(tmp_path)) == \
            "none"
        assert config.resolve_scratch_codec(MemoryStore()) == "gzip"

    def test_explicit_override_beats_auto(self, tmp_path):
        on = SortConfig(raw_scratch=True)
        off = SortConfig(raw_scratch=False)
        assert on.resolve_scratch_codec(MemoryStore()) == "none"
        assert off.resolve_scratch_codec(DirectoryStore(tmp_path)) == "gzip"


# -------------------------------------------------------- spill views


class TestSpillLease:
    def _raw_spill(self, tmp_path) -> "tuple[Path, list[bytes]]":
        records = [f"read-{i:04d}".encode() * 8 for i in range(32)]
        blob = write_chunk(records, "text", codec=NONE)
        path = tmp_path / "superchunk-0.metadata"
        path.write_bytes(blob)
        return path, records

    def test_decoded_records_match_and_lease_releases(self, tmp_path):
        path, records = self._raw_spill(tmp_path)
        ref = SpillFileRef(str(path), path.stat().st_size)
        buf, lease = open_spill_ref(ref)
        assert isinstance(buf, memoryview)
        assert buf.readonly
        decoded = read_chunk(buf)
        assert list(decoded.records) == records
        # read_chunk materialized the rows, so nothing pins the mapping.
        assert lease.release()
        assert lease.release()  # idempotent

    def test_release_refuses_while_views_pin_the_mapping(self, tmp_path):
        path, _records = self._raw_spill(tmp_path)
        with SpillLease(path) as lease:
            alias = lease.view(0, 64)
            assert not lease.release()
            alias.release()
            assert lease.release()

    def test_view_aliases_file_bytes(self, tmp_path):
        path, _records = self._raw_spill(tmp_path)
        raw = path.read_bytes()
        with SpillLease(path) as lease:
            assert lease.nbytes == len(raw)
            assert bytes(lease.view(8, 16)) == raw[8:24]
            assert bytes(lease.buf) == raw


class TestPayloadNbytes:
    def test_spill_file_ref_counts_mapped_size(self, tmp_path):
        ref = SpillFileRef(str(tmp_path / "x"), 1 << 20)
        assert payload_nbytes(ref) == 1 << 20
        # Nested in a task payload tuple, same accounting.
        assert payload_nbytes(("merge", [ref, ref])) >= 2 << 20


# ------------------------------------------------------ byte identity


class TestByteIdentity:
    def _sorted_bytes(self, scratch, config, backend=None, counters=None):
        ds = make_aligned_dataset(POSITIONS, chunk_size=5)
        out_store = MemoryStore()
        out = sort_dataset(ds, out_store, config, scratch_store=scratch,
                           backend=backend, counters=counters)
        assert verify_sorted(out)
        return store_bytes(out_store, out)

    def test_raw_scratch_output_matches_gzip(self, tmp_path):
        config = SortConfig(chunks_per_superchunk=3)
        raw_counters: dict = {}
        gzip_counters: dict = {}
        raw = self._sorted_bytes(DirectoryStore(tmp_path / "raw"),
                                 config, counters=raw_counters)
        gz = self._sorted_bytes(MemoryStore(), config,
                                counters=gzip_counters)
        assert raw == gz
        assert raw_counters["spill_view_bytes"] > 0
        assert raw_counters.get("decode_copies", 0) == 0
        assert gzip_counters["decode_copies"] > 0
        assert gzip_counters.get("spill_view_bytes", 0) == 0

    def test_forced_raw_on_memory_store_still_correct(self):
        # raw_scratch=True on a non-mappable store: no mmap restore, but
        # the identity frames round-trip through scratch.get unchanged.
        config = SortConfig(chunks_per_superchunk=3, raw_scratch=True)
        baseline = SortConfig(chunks_per_superchunk=3, raw_scratch=False)
        assert self._sorted_bytes(MemoryStore(), config) == \
            self._sorted_bytes(MemoryStore(), baseline)

    @pytest.mark.parametrize("make_backend", [
        lambda: SerialBackend(),
        lambda: ThreadBackend(workers=2),
        lambda: ProcessBackend(workers=2, start_method="fork"),
    ], ids=["serial", "thread", "process"])
    def test_backends_agree_raw_vs_gzip(self, tmp_path, make_backend):
        config = SortConfig(chunks_per_superchunk=3, merge_partitions=2)
        backend = make_backend()
        try:
            raw = self._sorted_bytes(
                DirectoryStore(tmp_path / "scratch"), config,
                backend=backend,
            )
            gz = self._sorted_bytes(
                MemoryStore(), config, backend=backend,
            )
        finally:
            backend.shutdown()
        assert raw == gz

    def test_raw_scratch_leaves_no_pinned_mappings(self, tmp_path):
        scratch_dir = tmp_path / "scratch"
        self._sorted_bytes(DirectoryStore(scratch_dir),
                           SortConfig(chunks_per_superchunk=3))
        gc.collect()
        # Every SpillLease released: the spill files are plain closed
        # files, freely removable.
        for p in scratch_dir.iterdir():
            p.unlink()
        scratch_dir.rmdir()

    @needs_shm
    def test_process_backend_sort_reports_zero_copies(self, tmp_path):
        before = set(shm_plane.list_segments("psna-"))
        config = SortConfig(chunks_per_superchunk=3, merge_partitions=2)
        counters: dict = {}
        backend = ProcessBackend(workers=2, start_method="fork",
                                 shm=True, shm_threshold=64)
        try:
            raw = self._sorted_bytes(
                DirectoryStore(tmp_path / "scratch"), config,
                backend=backend, counters=counters,
            )
        finally:
            backend.shutdown()
        serial = self._sorted_bytes(MemoryStore(), config)
        assert raw == serial
        # The whole sort memory plane moved on views: spill restore and
        # the worker->coordinator result direction.
        assert counters["spill_view_bytes"] > 0
        assert counters["result_view_bytes"] > 0
        assert counters["result_segments"] > 0
        assert counters.get("decode_copies", 0) == 0
        assert set(shm_plane.list_segments("psna-")) == before


# --------------------------------------------------- raw-framed results


def _big_result_task(shared, payload) -> bytes:
    return bytes(payload) * 1024


def _array_result_task(shared, payload) -> np.ndarray:
    return np.arange(int(payload), dtype=np.int64)


@needs_shm
class TestProcessBackendResultViews:
    def test_large_results_arrive_as_views(self):
        backend = ProcessBackend(workers=2, start_method="fork",
                                 shm=True, shm_threshold=64)
        try:
            results = backend.run_chunk(
                _big_result_task, [b"a", b"b"]
            )
            assert [bytes(r[:4]) for r in results] == [b"aaaa", b"bbbb"]
            assert all(isinstance(r, memoryview) for r in results)
            stats = backend.result_stats
            assert stats["result_segments"] == 2
            assert stats["result_view_bytes"] == 2 * 1024
            assert stats["result_copies"] == 0
        finally:
            backend.shutdown()

    def test_array_results_map_in_place(self):
        backend = ProcessBackend(workers=2, start_method="fork",
                                 shm=True, shm_threshold=64)
        try:
            [arr] = backend.run_chunk(_array_result_task, [512])
            assert isinstance(arr, np.ndarray)
            assert arr.dtype == np.int64
            assert int(arr.sum()) == 512 * 511 // 2
            assert backend.result_stats["result_segments"] == 1
        finally:
            backend.shutdown()

    def test_views_stay_valid_until_next_dispatch(self):
        backend = ProcessBackend(workers=1, start_method="fork",
                                 shm=True, shm_threshold=64)
        try:
            [first] = backend.run_chunk(_big_result_task, [b"x"])
            # Names are unlinked at attach: nothing to leak even while
            # the lease is deferred.
            assert first[:1] == b"x"
            [second] = backend.run_chunk(_big_result_task, [b"y"])
            # The first call's lease was flushed by the second dispatch;
            # the second view is live, the backend tracked both.
            assert second[:1] == b"y"
            assert backend.result_stats["result_segments"] == 2
        finally:
            backend.shutdown()

    def test_copy_fallback_counts_copies(self):
        backend = ProcessBackend(workers=1, start_method="fork",
                                 shm=True, shm_threshold=64,
                                 result_views=False)
        try:
            [result] = backend.run_chunk(_big_result_task, [b"z"])
            assert isinstance(result, bytes)
            assert backend.result_stats["result_copies"] == 1
            assert backend.result_stats["result_segments"] == 0
        finally:
            backend.shutdown()

    def test_shutdown_leaves_no_segments(self):
        before = set(shm_plane.list_segments("psna-"))
        backend = ProcessBackend(workers=2, start_method="fork",
                                 shm=True, shm_threshold=64)
        try:
            backend.run_chunk(_big_result_task, [b"a", b"b", b"c"])
        finally:
            backend.shutdown()
        assert set(shm_plane.list_segments("psna-")) == before


# ------------------------------------------------- read_ref deprecation


@needs_shm
class TestReadRefDeprecation:
    def test_mappable_read_warns_spilled_does_not(self, tmp_path):
        pool = shm_plane.BufferPool(spill_dir=tmp_path, spill_watermark=1)
        try:
            small = pool.put_bytes(b"mappable-bytes")
            assert small is not None
            with pytest.warns(DeprecationWarning, match="view_ref"):
                assert pool.read_ref(small) == b"mappable-bytes"

            name = f"{pool.prefix}-spillme"
            assert shm_plane.create_segment(name, b"s" * 64)
            spilled = pool.adopt_segment(name, 0, 64)
            assert spilled is not None
            assert pool.incref(spilled) is None  # past watermark: on disk
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                assert pool.read_ref(spilled) == b"s" * 64
            pool.release(spilled)
            pool.release(small)
        finally:
            pool.close()

    def test_restage_ref_rehydrates_spilled_bytes(self, tmp_path):
        pool = shm_plane.BufferPool(spill_dir=tmp_path, spill_watermark=1)
        try:
            name = f"{pool.prefix}-spill2"
            data = bytes(range(256)) * 4
            assert shm_plane.create_segment(name, data)
            spilled = pool.adopt_segment(name, 0, len(data))
            assert spilled is not None
            assert pool.incref(spilled) is None
            restaged = pool.restage_ref(spilled)
            assert restaged is not None
            view = pool.view_ref(restaged)
            assert view is not None
            assert bytes(view.view) == data
            view.release()
            pool.release(restaged)
            pool.release(spilled)
        finally:
            pool.close()


# ------------------------------------------------ stage-report counters


class TestStageReportCounters:
    def test_streaming_sort_surfaces_memory_plane_counters(self, tmp_path):
        from repro.core.subgraphs import PipelineBuilder, build_sort_graph

        ds = make_aligned_dataset(POSITIONS, chunk_size=5)
        out_store = MemoryStore()
        stage = build_sort_graph(
            ds.manifest, out_store, input_store=ds.store,
            config=SortConfig(chunks_per_superchunk=3),
            scratch_store=DirectoryStore(tmp_path / "scratch"),
            backend="serial",
        )
        pipeline = PipelineBuilder("mini").add(stage).build()
        try:
            result = pipeline.run(timeout=120)
        finally:
            pipeline.close()
        counters = result.stage_report["sort"]["counters"]
        assert counters["spill_bytes"] > 0
        assert counters["spill_view_bytes"] > 0
        assert counters["spill_restores"] > 0
        assert counters.get("decode_copies", 0) == 0
        sorted_ds = AGDDataset(stage.collector.manifest, out_store)
        assert verify_sorted(sorted_ds)

    def test_gzip_scratch_counts_decode_copies(self):
        from repro.core.subgraphs import PipelineBuilder, build_sort_graph

        ds = make_aligned_dataset(POSITIONS, chunk_size=5)
        stage = build_sort_graph(
            ds.manifest, MemoryStore(), input_store=ds.store,
            config=SortConfig(chunks_per_superchunk=3),
            backend="serial",
        )
        pipeline = PipelineBuilder("mini").add(stage).build()
        try:
            result = pipeline.run(timeout=120)
        finally:
            pipeline.close()
        counters = result.stage_report["sort"]["counters"]
        assert counters["decode_copies"] > 0
        assert counters.get("spill_view_bytes", 0) == 0


# --------------------------------------------------- crash mid-merge


class TestCrashResumeMidMerge:
    def test_sigkill_mid_sort_resumes_byte_identical(self, tmp_path):
        """SIGKILL after the first journaled sort chunk — mid-merge, the
        raw-scratch spills half consumed — then ``--resume`` must
        reproduce the uninterrupted output byte for byte."""
        from repro.core.ledger import CRASH_ENV
        from repro.formats.converters import import_reads
        from repro.genome.reference import write_fasta
        from repro.genome.synthetic import synthetic_dataset

        ref, reads, _ = synthetic_dataset(
            genome_length=12_000, coverage=2.0, seed=77
        )
        write_fasta(ref, tmp_path / "ref.fa")
        for sub in ("ds-ref", "ds-run"):
            store = DirectoryStore(tmp_path / sub)
            ds = import_reads(reads, "smoke", store, chunk_size=60)
            ds.save_manifest(tmp_path / sub)

        def run_cli(args, env=None):
            full_env = os.environ.copy()
            full_env["PYTHONPATH"] = (
                str(SRC_DIR) + os.pathsep + full_env.get("PYTHONPATH", "")
            )
            full_env.pop(CRASH_ENV, None)
            if env:
                full_env.update(env)
            return subprocess.run(
                [sys.executable, "-m", "repro.cli", *args],
                capture_output=True, text=True, env=full_env, timeout=180,
            )

        base = [
            "--reference", str(tmp_path / "ref.fa"),
            "--stages", "align,sort", "--backend", "serial",
        ]
        reference = run_cli([
            "pipeline", str(tmp_path / "ds-ref"), str(tmp_path / "out-ref"),
            *base,
        ])
        assert reference.returncode == 0, reference.stderr

        run_args = [
            "pipeline", str(tmp_path / "ds-run"), str(tmp_path / "out-run"),
            *base,
            "--ledger-dir", str(tmp_path / "runs"), "--run-id", "crashed",
            "--scratch-dir", str(tmp_path / "scratch"),
        ]
        crashed = run_cli(run_args, env={CRASH_ENV: "sort:1"})
        assert crashed.returncode in (-9, 137), (
            f"expected SIGKILL, got rc={crashed.returncode}\n"
            f"stdout:\n{crashed.stdout}\nstderr:\n{crashed.stderr}"
        )

        resumed = run_cli(run_args + ["--resume"])
        assert resumed.returncode == 0, resumed.stderr

        def tree(root: Path) -> "dict[str, bytes]":
            return {
                str(p.relative_to(root)): p.read_bytes()
                for p in sorted(root.rglob("*")) if p.is_file()
            }

        ref_files, got_files = \
            tree(tmp_path / "out-ref"), tree(tmp_path / "out-run")
        assert sorted(ref_files) == sorted(got_files)
        differing = [k for k in ref_files if ref_files[k] != got_files[k]]
        assert not differing, f"resumed output differs: {differing}"
