"""Tests for Persona dataflow operators (§4.2-§4.4)."""

import pytest

from repro.agd.manifest import ChunkEntry
from repro.core.ops import (
    AGDParserNode,
    AlignerNode,
    ChunkNameSource,
    ChunkReaderNode,
    ChunkWorkItem,
    ColumnWriterNode,
    QueueNameSource,
    SamWriterNode,
)
from repro.core.subgraphs import AlignGraphConfig, build_align_graph
from repro.dataflow.executor import Executor
from repro.dataflow.queues import Queue
from repro.dataflow.resources import ResourceManager
from repro.dataflow.session import NodeContext, Session
from repro.dataflow.executor import BusyCounter
import threading

from repro.storage.base import MemoryStore


def make_ctx(resources=None):
    return NodeContext(
        resources=resources or ResourceManager(),
        busy_counter=BusyCounter(),
        stats_lock=threading.Lock(),
    )


class TestReaderParser:
    def test_reader_fetches_columns(self, dataset):
        reader = ChunkReaderNode(dataset.store, columns=("bases", "qual"))
        entry = dataset.manifest.chunks[0]
        [item] = reader.process(entry, make_ctx())
        assert set(item.raw) == {"bases", "qual"}

    def test_parser_decodes(self, dataset, reads):
        reader = ChunkReaderNode(dataset.store, columns=("bases", "qual"))
        parser = AGDParserNode()
        entry = dataset.manifest.chunks[0]
        [item] = reader.process(entry, make_ctx())
        [parsed] = parser.process(item, make_ctx())
        assert parsed.columns["bases"] == [r.bases for r in reads[:100]]
        assert parsed.raw == {}

    def test_parser_count_mismatch_detected(self, dataset):
        parser = AGDParserNode()
        entry = ChunkEntry(dataset.manifest.chunks[0].path, 0, 99)  # wrong
        from repro.core.ops import ChunkWorkItem

        blob = dataset.store.get(entry.chunk_file("bases"))
        item = ChunkWorkItem(entry=entry, raw={"bases": blob})
        with pytest.raises(ValueError, match="manifest says"):
            parser.process(item, make_ctx())


class TestAlignerNode:
    def test_aligns_chunk(self, dataset, snap_aligner, reads):
        resources = ResourceManager()
        resources.register("aligner", snap_aligner)
        executor = Executor(2)
        resources.register("executor", executor)
        node = AlignerNode("aligner", "executor", subchunk_size=16)
        entry = dataset.manifest.chunks[0]
        item = ChunkWorkItem(
            entry=entry,
            columns={"bases": [r.bases for r in reads[:100]]},
        )
        [out] = node.process(item, make_ctx(resources))
        assert len(out.results) == 100
        assert all(r is not None for r in out.results)
        aligned = sum(1 for r in out.results if r.is_aligned)
        assert aligned >= 98
        executor.shutdown()

    def test_subchunk_boundaries(self, dataset, snap_aligner, reads):
        """Results identical regardless of subchunk size (Figure 4)."""
        resources = ResourceManager()
        resources.register("aligner", snap_aligner)
        executor = Executor(3)
        resources.register("executor", executor)
        entry = dataset.manifest.chunks[0]
        outputs = []
        for size in (7, 100):
            node = AlignerNode("aligner", "executor", subchunk_size=size,
                               name=f"al{size}")
            item = ChunkWorkItem(
                entry=entry,
                columns={"bases": [r.bases for r in reads[:50]]},
            )
            [out] = node.process(item, make_ctx(resources))
            outputs.append(out.results)
        assert outputs[0] == outputs[1]
        executor.shutdown()

    def test_invalid_subchunk_size(self):
        with pytest.raises(ValueError):
            AlignerNode("a", "e", subchunk_size=0)


class TestWriters:
    def test_column_writer(self, aligned_dataset):
        out_store = MemoryStore()
        writer = ColumnWriterNode(out_store, column="results",
                                  record_type="results")
        entry = aligned_dataset.manifest.chunks[0]
        results = aligned_dataset.read_chunk("results", 0).records
        item = ChunkWorkItem(entry=entry)
        item.results = results
        writer.process(item, make_ctx())
        from repro.agd.chunk import read_chunk

        chunk = read_chunk(out_store.get(entry.chunk_file("results")))
        assert chunk.records == results

    def test_column_writer_missing_results(self, dataset):
        writer = ColumnWriterNode(MemoryStore(), column="results",
                                  record_type="results")
        item = ChunkWorkItem(entry=dataset.manifest.chunks[0])
        with pytest.raises(ValueError):
            writer.process(item, make_ctx())

    def test_sam_writer(self, aligned_dataset, reference):
        out_store = MemoryStore()
        writer = SamWriterNode(out_store, reference.names)
        entry = aligned_dataset.manifest.chunks[0]
        item = ChunkWorkItem(
            entry=entry,
            columns={
                "bases": aligned_dataset.read_chunk("bases", 0).records,
                "qual": aligned_dataset.read_chunk("qual", 0).records,
                "metadata": aligned_dataset.read_chunk("metadata", 0).records,
            },
        )
        item.results = aligned_dataset.read_chunk("results", 0).records
        writer.process(item, make_ctx())
        blob = out_store.get(f"{entry.path}.sam")
        assert blob.count(b"\n") == 100


class TestSources:
    def test_manifest_source(self, dataset):
        source = ChunkNameSource(dataset.manifest)
        entries = list(source.generate(make_ctx()))
        assert entries == dataset.manifest.chunks

    def test_queue_source_drains_until_closed(self):
        q = Queue("names", 8)
        q.register_producer()
        for i in range(3):
            q.put(ChunkEntry(f"c-{i}", i * 10, 10))
        q.producer_done()
        source = QueueNameSource(q)
        entries = list(source.generate(make_ctx()))
        assert len(entries) == 3


class TestFullGraph:
    def test_align_graph_end_to_end(self, dataset, snap_aligner):
        out_store = MemoryStore()
        built = build_align_graph(
            dataset.manifest, dataset.store, out_store, snap_aligner,
            config=AlignGraphConfig(executor_threads=2, aligner_nodes=2),
        )
        Session(built.graph).run(timeout=120)
        built.close()
        assert built.sink.chunks == dataset.num_chunks
        assert built.sink.records == dataset.total_records
        for entry in dataset.manifest.chunks:
            assert out_store.exists(entry.chunk_file("results"))

    def test_results_row_aligned_with_input(self, dataset, snap_aligner, reads):
        """Results chunk i row j corresponds to input read i*chunk+j."""
        out_store = MemoryStore()
        built = build_align_graph(
            dataset.manifest, dataset.store, out_store, snap_aligner,
            config=AlignGraphConfig(executor_threads=2),
        )
        Session(built.graph).run(timeout=120)
        built.close()
        from repro.agd.chunk import read_chunk

        entry = dataset.manifest.chunks[1]
        chunk = read_chunk(out_store.get(entry.chunk_file("results")))
        direct = [
            snap_aligner.align_read(reads[entry.first_ordinal + j].bases)
            for j in range(3)
        ]
        assert chunk.records[:3] == direct
