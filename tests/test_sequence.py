"""Unit and property tests for repro.genome.sequence."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.genome.sequence import (
    InvalidBaseError,
    complement,
    decode_bases,
    encode_bases,
    gc_content,
    hamming_distance,
    is_valid_sequence,
    phred_to_quality_string,
    quality_string_to_phred,
    reverse_complement,
)

sequences = st.binary(max_size=300).map(
    lambda b: bytes(b"ACGTN"[x % 5] for x in b)
)


class TestComplement:
    def test_basic(self):
        assert complement(b"ACGT") == b"TGCA"

    def test_n_maps_to_n(self):
        assert complement(b"N") == b"N"

    def test_lowercase_preserved(self):
        assert complement(b"acgt") == b"tgca"

    def test_reverse_complement(self):
        assert reverse_complement(b"ACGT") == b"ACGT"
        assert reverse_complement(b"AACC") == b"GGTT"

    def test_empty(self):
        assert reverse_complement(b"") == b""

    @given(sequences)
    def test_reverse_complement_involution(self, seq):
        assert reverse_complement(reverse_complement(seq)) == seq

    @given(sequences)
    def test_reverse_complement_length(self, seq):
        assert len(reverse_complement(seq)) == len(seq)


class TestEncoding:
    def test_roundtrip_simple(self):
        codes = encode_bases(b"ACGTN")
        assert list(codes) == [0, 1, 2, 3, 4]
        assert decode_bases(codes) == b"ACGTN"

    def test_lowercase_accepted(self):
        assert decode_bases(encode_bases(b"acgt")) == b"ACGT"

    def test_invalid_base_rejected(self):
        with pytest.raises(InvalidBaseError):
            encode_bases(b"ACGX")

    def test_invalid_code_rejected(self):
        with pytest.raises(InvalidBaseError):
            decode_bases(np.array([7], dtype=np.uint8))

    @given(sequences)
    def test_roundtrip_property(self, seq):
        assert decode_bases(encode_bases(seq)) == seq.upper()


class TestValidation:
    def test_valid(self):
        assert is_valid_sequence(b"ACGTNacgtn")

    def test_invalid(self):
        assert not is_valid_sequence(b"ACG-T")

    def test_empty_is_valid(self):
        assert is_valid_sequence(b"")


class TestGCContent:
    def test_empty(self):
        assert gc_content(b"") == 0.0

    def test_all_gc(self):
        assert gc_content(b"GCGC") == 1.0

    def test_half(self):
        assert gc_content(b"ACGT") == pytest.approx(0.5)


class TestHamming:
    def test_equal(self):
        assert hamming_distance(b"ACGT", b"ACGT") == 0

    def test_all_diff(self):
        assert hamming_distance(b"AAAA", b"TTTT") == 4

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance(b"A", b"AA")

    def test_empty(self):
        assert hamming_distance(b"", b"") == 0

    @given(sequences, sequences)
    def test_symmetry(self, a, b):
        n = min(len(a), len(b))
        assert hamming_distance(a[:n], b[:n]) == hamming_distance(b[:n], a[:n])


class TestQuality:
    def test_phred_roundtrip_shape(self):
        qual = phred_to_quality_string([0.001, 0.01, 0.1])
        scores = quality_string_to_phred(qual)
        assert list(scores) == [30, 20, 10]

    def test_phred_caps_at_60(self):
        qual = phred_to_quality_string([1e-12])
        assert quality_string_to_phred(qual)[0] == 60

    def test_rejects_unprintable(self):
        with pytest.raises(ValueError):
            quality_string_to_phred(b"\x01\x02")

    @given(st.lists(st.floats(min_value=1e-6, max_value=1.0), min_size=1, max_size=50))
    def test_phred_monotonic(self, probs):
        qual = phred_to_quality_string(probs)
        scores = quality_string_to_phred(qual)
        assert len(scores) == len(probs)
        assert all(0 <= s <= 60 for s in scores)
