"""Tests for the row-oriented baseline tools (Table 2, §5.6)."""

import io

import pytest

from repro.core.baselines import (
    BaselineSortReport,
    PicardLikeSorter,
    SamblasterLike,
    SamblasterReport,
    SamtoolsLikeSorter,
)
from repro.formats.bam import read_bam, write_bam
from repro.formats.sam import SamHeader, SamRecord, read_sam, sam_bytes


HEADER = SamHeader(contigs=[{"name": "chr1", "length": 100_000},
                            {"name": "chr2", "length": 50_000}])


def make_records(positions):
    return [
        SamRecord(
            qname=f"r{i}", flag=0, rname=contig, pos=pos, mapq=60,
            cigar="4M", rnext="*", pnext=0, tlen=0, seq=b"ACGT",
            qual=b"IIII",
        )
        for i, (contig, pos) in enumerate(positions)
    ]


def unsorted_sam() -> bytes:
    positions = [("chr1", 500), ("chr2", 5), ("chr1", 3), ("chr1", 9999),
                 ("chr2", 700), ("chr1", 1), ("chr1", 42)]
    return sam_bytes(HEADER, make_records(positions))


def is_coordinate_sorted(records) -> bool:
    keys = [r.location_key() for r in records]
    return keys == sorted(keys)


class TestSamtoolsLike:
    def test_sort_bam(self):
        records = make_records([("chr1", p) for p in (9, 2, 7, 1, 8)])
        buf = io.BytesIO()
        write_bam(HEADER, records, buf)
        sorter = SamtoolsLikeSorter(run_size=2)
        report = BaselineSortReport()
        sorted_blob = sorter.sort_bam(buf.getvalue(), report)
        header, out = read_bam(io.BytesIO(sorted_blob))
        assert is_coordinate_sorted(out)
        assert len(out) == 5
        assert report.runs_written == 3  # external runs of 2
        assert header.sort_order == "coordinate"

    def test_sort_sam_includes_conversion(self):
        sorter = SamtoolsLikeSorter(run_size=100)
        report = BaselineSortReport()
        sorted_blob = sorter.sort_sam(unsorted_sam(), report)
        assert report.conversion_performed
        _, out = read_bam(io.BytesIO(sorted_blob))
        assert is_coordinate_sorted(out)

    def test_record_preservation(self):
        sorter = SamtoolsLikeSorter(run_size=3)
        sorted_blob = sorter.sort_sam(unsorted_sam())
        _, out = read_bam(io.BytesIO(sorted_blob))
        assert {r.qname for r in out} == {f"r{i}" for i in range(7)}

    def test_invalid_run_size(self):
        with pytest.raises(ValueError):
            SamtoolsLikeSorter(run_size=0)


class TestPicardLike:
    def test_sort(self):
        report = BaselineSortReport()
        sorted_blob = PicardLikeSorter().sort_sam(unsorted_sam(), report)
        _, out = read_sam(io.BytesIO(sorted_blob))
        assert is_coordinate_sorted(out)
        assert report.records == 7

    def test_agrees_with_samtools_like(self):
        sam = unsorted_sam()
        picard_out = PicardLikeSorter().sort_sam(sam)
        samtools_out = SamtoolsLikeSorter().sort_sam(sam)
        _, picard_records = read_sam(io.BytesIO(picard_out))
        _, samtools_records = read_bam(io.BytesIO(samtools_out))
        assert [r.qname for r in picard_records] == [
            r.qname for r in samtools_records
        ]

    def test_validation_rejects_bad_cigar(self):
        record = SamRecord(
            qname="bad", flag=0, rname="chr1", pos=1, mapq=60, cigar="99M",
            rnext="*", pnext=0, tlen=0, seq=b"ACGT", qual=b"IIII",
        )
        blob = sam_bytes(HEADER, [record])
        with pytest.raises(ValueError, match="CIGAR"):
            PicardLikeSorter().sort_sam(blob)


class TestSamblasterLike:
    def test_marks_duplicates(self):
        positions = [("chr1", 100), ("chr1", 100), ("chr1", 200),
                     ("chr1", 100)]
        blob = sam_bytes(HEADER, make_records(positions))
        report = SamblasterReport()
        marked = SamblasterLike().mark(
            blob, [{"name": "chr1", "length": 100_000},
                   {"name": "chr2", "length": 50_000}], report
        )
        assert report.duplicates_marked == 2
        _, out = read_sam(io.BytesIO(marked))
        flags = [bool(r.flag & 0x400) for r in out]
        assert flags == [False, True, False, True]

    def test_header_preserved(self):
        blob = sam_bytes(HEADER, make_records([("chr1", 1)]))
        marked = SamblasterLike().mark(
            blob, [{"name": "chr1", "length": 100_000}]
        )
        assert marked.startswith(b"@HD")

    def test_unmapped_not_marked(self):
        records = [
            SamRecord(qname=f"u{i}", flag=4, rname="*", pos=0, mapq=0,
                      cigar="", rnext="*", pnext=0, tlen=0, seq=b"ACGT",
                      qual=b"IIII")
            for i in range(3)
        ]
        blob = sam_bytes(HEADER, records)
        report = SamblasterReport()
        SamblasterLike().mark(blob, [], report)
        assert report.duplicates_marked == 0
