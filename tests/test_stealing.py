"""Tests for the work-stealing executor (the §4.5 alternative)."""

import threading
import time

import pytest

from repro.dataflow.stealing import WorkStealingExecutor


class TestWorkStealing:
    def test_runs_all_tasks(self):
        executor = WorkStealingExecutor(3)
        results = [None] * 30

        def make(i):
            def task():
                results[i] = i
            return task

        executor.run_chunk([make(i) for i in range(30)])
        assert results == list(range(30))
        executor.shutdown()

    def test_stealing_repairs_imbalance(self):
        """All of one chunk's tasks land on one deque; other workers
        must steal to finish quickly."""
        executor = WorkStealingExecutor(4)
        concurrency = []
        active = [0]
        lock = threading.Lock()

        def task():
            with lock:
                active[0] += 1
                concurrency.append(active[0])
            time.sleep(0.01)
            with lock:
                active[0] -= 1

        executor.run_chunk([task] * 16)
        # Without stealing, one worker would run all 16 serially and
        # concurrency would never exceed 1.
        assert max(concurrency) >= 2
        assert executor.stats.steals > 0
        executor.shutdown()

    def test_error_propagates(self):
        executor = WorkStealingExecutor(2)

        def bad():
            raise RuntimeError("task failed")

        with pytest.raises(RuntimeError, match="task failed"):
            executor.run_chunk([bad])
        executor.shutdown()

    def test_multiple_chunks_interleave(self):
        executor = WorkStealingExecutor(2)
        counter = [0]
        lock = threading.Lock()

        def task():
            with lock:
                counter[0] += 1

        completions = [executor.submit_chunk([task] * 5) for _ in range(6)]
        for completion in completions:
            completion.wait(timeout=10)
        assert counter[0] == 30
        assert executor.stats.tasks_executed == 30
        executor.shutdown()

    def test_empty_chunk_rejected(self):
        executor = WorkStealingExecutor(1)
        with pytest.raises(ValueError):
            executor.submit_chunk([])
        executor.shutdown()

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            WorkStealingExecutor(0)

    def test_coordination_cost_visible(self):
        """The paper's objection: stealing does extra coordination."""
        executor = WorkStealingExecutor(4)
        executor.run_chunk([lambda: time.sleep(0.002)] * 12)
        # Steal attempts (successful or not) are the coordination traffic
        # that bounded shared queues avoid.
        assert executor.stats.steal_attempts > 0
        executor.shutdown()
