"""Tests for the fine-grain executor resource (§4.3, Figure 4)."""

import threading
import time

import pytest

from repro.dataflow.executor import (
    BusyCounter,
    ChunkCompletion,
    Executor,
    PartitionedExecutor,
)


class TestChunkCompletion:
    def test_countdown(self):
        completion = ChunkCompletion(2)
        completion.task_done()
        completion.task_done()
        completion.wait(timeout=0.1)  # returns immediately

    def test_timeout(self):
        completion = ChunkCompletion(1)
        with pytest.raises(TimeoutError):
            completion.wait(timeout=0.05)

    def test_error_propagates(self):
        completion = ChunkCompletion(2)
        completion.task_done(ValueError("boom"))
        completion.task_done()
        with pytest.raises(ValueError, match="boom"):
            completion.wait(timeout=0.1)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            ChunkCompletion(0)


class TestExecutor:
    def test_runs_all_subtasks(self):
        executor = Executor(3)
        results = [None] * 20

        def make(i):
            def task():
                results[i] = i * i
            return task

        executor.run_chunk([make(i) for i in range(20)])
        assert results == [i * i for i in range(20)]
        executor.shutdown()

    def test_multiple_feeding_nodes(self):
        """Multiple aligner nodes feed one executor (Figure 4)."""
        executor = Executor(4)
        counters = [0, 0, 0]
        lock = threading.Lock()

        def feeder(which):
            for _ in range(10):
                def task():
                    with lock:
                        counters[which] += 1
                executor.run_chunk([task] * 5)

        threads = [threading.Thread(target=feeder, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(20.0)
        assert counters == [50, 50, 50]
        assert executor.stats.tasks_executed == 150
        executor.shutdown()

    def test_error_reaches_waiter(self):
        executor = Executor(2)

        def bad():
            raise RuntimeError("kernel failure")

        with pytest.raises(RuntimeError, match="kernel failure"):
            executor.run_chunk([bad])
        executor.shutdown()

    def test_error_does_not_kill_workers(self):
        executor = Executor(1)

        def bad():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            executor.run_chunk([bad])
        done = []
        executor.run_chunk([lambda: done.append(1)])
        assert done == [1]
        executor.shutdown()

    def test_empty_chunk_rejected(self):
        executor = Executor(1)
        with pytest.raises(ValueError):
            executor.submit_chunk([])
        executor.shutdown()

    def test_stats(self):
        executor = Executor(2)
        executor.run_chunk([lambda: time.sleep(0.01)] * 4)
        assert executor.stats.tasks_executed == 4
        assert executor.stats.busy_seconds > 0
        assert 0 <= executor.stats.utilization(2) <= 1.0
        executor.shutdown()

    def test_busy_counter_integration(self):
        counter = BusyCounter()
        executor = Executor(2, busy_counter=counter)
        peak = []

        def task():
            peak.append(counter.busy)
            time.sleep(0.01)

        executor.run_chunk([task] * 4)
        assert max(peak) >= 1
        assert counter.busy == 0  # all exited
        executor.shutdown()

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            Executor(0)

    def test_shutdown_waits(self):
        executor = Executor(2)
        executor.run_chunk([lambda: time.sleep(0.01)] * 2)
        executor.shutdown(wait=True)  # must not hang


class TestPartitionedExecutor:
    def test_groups(self):
        executor = PartitionedExecutor({"serial": 1, "parallel": 3})
        assert executor.total_threads == 4
        assert executor.group("serial").num_threads == 1
        assert executor.group("parallel").num_threads == 3
        executor.shutdown()

    def test_unknown_group(self):
        executor = PartitionedExecutor({"a": 1})
        with pytest.raises(KeyError):
            executor.group("b")
        executor.shutdown()

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            PartitionedExecutor({})
        with pytest.raises(ValueError):
            PartitionedExecutor({"a": 0})

    def test_groups_run_independently(self):
        """The BWA paired pattern: serial inference + parallel alignment."""
        executor = PartitionedExecutor({"serial": 1, "parallel": 2})
        order = []
        lock = threading.Lock()

        def serial_task():
            with lock:
                order.append("serial")

        def parallel_task():
            with lock:
                order.append("parallel")

        executor.group("serial").run_chunk([serial_task])
        executor.group("parallel").run_chunk([parallel_task] * 4)
        assert order.count("serial") == 1
        assert order.count("parallel") == 4
        executor.shutdown()
