"""Tests for the synthetic genome/read generator."""

import pytest

from repro.genome.reads import ReadRecord
from repro.genome.sequence import gc_content, is_valid_sequence, reverse_complement
from repro.genome.synthetic import (
    ErrorModel,
    ReadSimulator,
    synthetic_dataset,
    synthetic_reference,
)


class TestSyntheticReference:
    def test_length(self):
        ref = synthetic_reference(10_000, seed=1)
        assert len(ref) == 10_000

    def test_contig_split(self):
        ref = synthetic_reference(10_001, num_contigs=3, seed=1)
        assert len(ref.contigs) == 3
        assert sum(len(c) for c in ref.contigs) == 10_001

    def test_deterministic(self):
        a = synthetic_reference(5000, seed=7)
        b = synthetic_reference(5000, seed=7)
        assert a.concatenated() == b.concatenated()

    def test_seed_changes_content(self):
        a = synthetic_reference(5000, seed=7)
        b = synthetic_reference(5000, seed=8)
        assert a.concatenated() != b.concatenated()

    def test_gc_bias(self):
        ref = synthetic_reference(200_000, seed=3, gc_bias=0.41)
        assert 0.38 < gc_content(ref.concatenated()) < 0.44

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            synthetic_reference(0)
        with pytest.raises(ValueError):
            synthetic_reference(10, num_contigs=0)
        with pytest.raises(ValueError):
            synthetic_reference(2, num_contigs=3)


class TestErrorModel:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ErrorModel(substitution_rate=1.5)
        with pytest.raises(ValueError):
            ErrorModel(indel_rate=-0.1)


class TestReadSimulator:
    @pytest.fixture()
    def sim(self):
        ref = synthetic_reference(20_000, seed=11)
        return ReadSimulator(ref, read_length=101, seed=12)

    def test_read_geometry(self, sim):
        reads, origins = sim.simulate(50)
        assert len(reads) == len(origins) == 50
        for read in reads:
            assert isinstance(read, ReadRecord)
            assert len(read.bases) == 101
            assert len(read.qualities) == 101
            assert is_valid_sequence(read.bases)

    def test_unique_metadata(self, sim):
        reads, _ = sim.simulate(100)
        names = {r.metadata for r in reads}
        assert len(names) == 100

    def test_origins_in_bounds(self, sim):
        _, origins = sim.simulate(100)
        for origin in origins:
            assert 0 <= origin.global_pos <= 20_000 - 101

    def test_forward_reads_match_reference_mostly(self):
        ref = synthetic_reference(20_000, seed=21)
        sim = ReadSimulator(
            ref, read_length=101,
            error_model=ErrorModel(substitution_rate=0.0, indel_rate=0.0,
                                   n_rate=0.0),
            seed=22,
        )
        reads, origins = sim.simulate(40)
        for read, origin in zip(reads, origins):
            window = ref.fetch(origin.global_pos, 101)
            expected = reverse_complement(window) if origin.reverse else window
            assert read.bases == expected

    def test_error_counting(self):
        ref = synthetic_reference(20_000, seed=31)
        sim = ReadSimulator(
            ref, read_length=101,
            error_model=ErrorModel(substitution_rate=0.02, indel_rate=0.0,
                                   n_rate=0.0),
            seed=32,
        )
        reads, origins = sim.simulate(100)
        total_errors = sum(o.errors for o in origins)
        # ~2% of 10100 bases, wide tolerance.
        assert 80 < total_errors < 350

    def test_coverage_formula(self, sim):
        n = sim.reads_for_coverage(10.0)
        assert n == pytest.approx(10.0 * 20_000 / 101, rel=0.01)

    def test_duplicates_fraction(self):
        ref = synthetic_reference(20_000, seed=41)
        sim = ReadSimulator(ref, duplicate_fraction=0.3, seed=42)
        _, origins = sim.simulate(400)
        dups = sum(1 for o in origins if o.is_duplicate)
        assert 0.2 < dups / 400 < 0.4

    def test_duplicates_share_origin(self):
        ref = synthetic_reference(20_000, seed=51)
        sim = ReadSimulator(ref, duplicate_fraction=0.5, seed=52)
        _, origins = sim.simulate(100)
        positions = [o.global_pos for o in origins]
        for i, origin in enumerate(origins):
            if origin.is_duplicate:
                assert origin.global_pos in positions[:i]

    def test_paired_geometry(self):
        ref = synthetic_reference(20_000, seed=61)
        sim = ReadSimulator(ref, paired=True, insert_size_mean=300,
                            insert_size_sd=10, seed=62)
        reads, origins = sim.simulate(100)
        assert len(reads) == 100
        for i in range(0, 100, 2):
            r1o, r2o = origins[i], origins[i + 1]
            assert r1o.reverse != r2o.reverse
            assert r1o.mate_pos == r2o.global_pos
            assert r2o.mate_pos == r1o.global_pos

    def test_paired_odd_count_rejected(self):
        ref = synthetic_reference(20_000, seed=71)
        sim = ReadSimulator(ref, paired=True, seed=72)
        with pytest.raises(ValueError):
            sim.simulate(3)

    def test_insert_too_small_rejected(self):
        ref = synthetic_reference(20_000, seed=81)
        with pytest.raises(ValueError):
            ReadSimulator(ref, read_length=101, paired=True,
                          insert_size_mean=100)

    def test_determinism(self):
        ref = synthetic_reference(20_000, seed=91)
        a, _ = ReadSimulator(ref, seed=92).simulate(20)
        b, _ = ReadSimulator(ref, seed=92).simulate(20)
        assert a == b


class TestSyntheticDataset:
    def test_one_call(self):
        ref, reads, origins = synthetic_dataset(
            genome_length=10_000, coverage=2.0, seed=5
        )
        assert len(ref) == 10_000
        assert len(reads) == len(origins)
        assert len(reads) == pytest.approx(2.0 * 10_000 / 101, rel=0.02)

    def test_paired_even(self):
        _, reads, _ = synthetic_dataset(
            genome_length=10_000, coverage=1.0, paired=True, seed=6
        )
        assert len(reads) % 2 == 0
