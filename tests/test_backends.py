"""Tests for the pluggable execution backends (serial / thread / process).

The contract every backend must honor: ``run_chunk(fn, payloads)``
returns per-payload results in order, the first task error re-raises in
the caller (via ChunkCompletion — including across process boundaries),
and all backends produce identical results for the same task payloads.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.core.pipelines import align_dataset
from repro.core.subgraphs import AlignGraphConfig
from repro.dataflow.backends import (
    BACKEND_CHOICES,
    DEFAULT_BATCH_SIZE,
    Backend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    as_backend,
    make_backend,
    resolve_start_method,
)
from repro.dataflow.executor import BusyCounter, Executor

ALL_BACKENDS = list(BACKEND_CHOICES)


# ---------------------------------------------------------------------------
# Task functions must be module-level so the process backend can pickle
# them by reference.

def square_task(shared, payload):
    return payload * payload


def offset_task(shared, payload):
    return shared["offset"] + payload


class ExplodingPayloadError(RuntimeError):
    pass


def explode_on_seven(shared, payload):
    if payload == 7:
        raise ExplodingPayloadError(f"payload {payload} exploded")
    return payload


@pytest.fixture(params=ALL_BACKENDS)
def any_backend(request):
    backend = make_backend(request.param, workers=2, batch_size=2)
    yield backend
    backend.shutdown()


class TestBackendContract:
    def test_ordered_results(self, any_backend):
        assert any_backend.run_chunk(square_task, list(range(10))) == [
            i * i for i in range(10)
        ]

    def test_empty_payloads(self, any_backend):
        assert any_backend.run_chunk(square_task, []) == []

    def test_shared_resources(self, any_backend):
        any_backend.register_shared("offset", 100)
        assert any_backend.run_chunk(offset_task, [1, 2, 3]) == [101, 102, 103]

    def test_error_propagates_to_caller(self, any_backend):
        with pytest.raises(ExplodingPayloadError, match="payload 7"):
            any_backend.run_chunk(explode_on_seven, list(range(12)))

    def test_usable_after_error(self, any_backend):
        with pytest.raises(ExplodingPayloadError):
            any_backend.run_chunk(explode_on_seven, [7])
        assert any_backend.run_chunk(square_task, [3]) == [9]

    def test_identical_results_across_backends(self):
        results = {}
        for kind in ALL_BACKENDS:
            backend = make_backend(kind, workers=2, batch_size=3)
            try:
                results[kind] = backend.run_chunk(square_task, list(range(25)))
            finally:
                backend.shutdown()
        assert results["serial"] == results["thread"] == results["process"]


class TestMakeBackend:
    def test_kinds(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        thread = make_backend("thread", workers=3)
        try:
            assert isinstance(thread, ThreadBackend)
            assert thread.workers == 3
        finally:
            thread.shutdown()
        process = make_backend("process", workers=2)
        assert isinstance(process, ProcessBackend)
        assert process.workers == 2
        process.shutdown()  # never started: must be a no-op

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")

    def test_passthrough_instance(self):
        backend = SerialBackend()
        assert make_backend(backend) is backend

    def test_as_backend_wraps_legacy_executor(self):
        executor = Executor(2)
        try:
            backend = as_backend(executor)
            assert isinstance(backend, ThreadBackend)
            assert backend.executor is executor
            assert backend.run_chunk(square_task, [4]) == [16]
            # Wrapper does not own the executor: shutdown leaves it alive.
            backend.shutdown()
            assert backend.run_chunk(square_task, [5]) == [25]
        finally:
            executor.shutdown()

    def test_as_backend_passthrough_and_rejection(self):
        backend = SerialBackend()
        assert as_backend(backend) is backend
        with pytest.raises(TypeError):
            as_backend(object())


class TestSerialBackend:
    def test_busy_counter_balanced(self):
        counter = BusyCounter()
        backend = SerialBackend(busy_counter=counter)
        backend.run_chunk(square_task, [1, 2])
        assert counter.busy == 0

    def test_shared_fallback_mapping(self):
        backend = SerialBackend()
        assert backend.run_chunk(
            offset_task, [5], shared={"offset": 10}
        ) == [15]

    def test_registry_shadows_fallback(self):
        backend = SerialBackend()
        backend.register_shared("offset", 1)
        assert backend.run_chunk(
            offset_task, [5], shared={"offset": 100}
        ) == [6]


class TestProcessBackend:
    def test_start_method_guard(self):
        available = multiprocessing.get_all_start_methods()
        assert resolve_start_method() in available
        assert ProcessBackend(workers=1).start_method in available
        with pytest.raises(ValueError, match="unavailable"):
            resolve_start_method("not-a-method")

    def test_batching_preserves_order(self):
        # 11 payloads / batch_size 3 -> 4 batches, one partial.
        backend = ProcessBackend(workers=2, batch_size=3)
        try:
            assert backend.run_chunk(square_task, list(range(11))) == [
                i * i for i in range(11)
            ]
        finally:
            backend.shutdown()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ProcessBackend(workers=0)
        with pytest.raises(ValueError):
            ProcessBackend(batch_size=0)
        assert ProcessBackend().batch_size == DEFAULT_BATCH_SIZE

    def test_error_crosses_process_boundary(self):
        """ChunkCompletion error propagation across the process boundary:
        the worker's exception re-raises in the waiting caller thread."""
        backend = ProcessBackend(workers=2, batch_size=2)
        try:
            with pytest.raises(ExplodingPayloadError, match="exploded"):
                backend.run_chunk(explode_on_seven, list(range(10)))
            # Pool survives; later chunks still run.
            assert backend.run_chunk(square_task, [6]) == [36]
        finally:
            backend.shutdown()

    def test_register_shared_after_start_rejected(self):
        backend = ProcessBackend(workers=1)
        try:
            backend.run_chunk(square_task, [1])
            with pytest.raises(RuntimeError, match="register_shared"):
                backend.register_shared("late", 1)
        finally:
            backend.shutdown()

    def test_shutdown_idempotent(self):
        backend = ProcessBackend(workers=1)
        backend.run_chunk(square_task, [1])
        backend.shutdown()
        backend.shutdown()


@pytest.mark.parametrize("kind", ALL_BACKENDS)
def test_alignment_pipeline_per_backend(
    dataset, snap_aligner, aligned_results, kind
):
    """The acceptance property: align_dataset(backend=...) produces the
    same alignment results on the synthetic genome for every backend."""
    config = AlignGraphConfig(
        executor_threads=2, aligner_nodes=2, subchunk_size=32, batch_size=2,
    )
    outcome = align_dataset(
        dataset, snap_aligner, config=config, backend=kind
    )
    assert outcome.total_reads == dataset.total_records
    assert dataset.read_column("results") == aligned_results


def test_alignment_backend_instance_reuse(dataset, snap_aligner):
    """A caller-owned Backend instance is honored (and not shut down)."""
    backend = ThreadBackend(workers=2)
    try:
        align_dataset(dataset, snap_aligner, backend=backend)
        assert "results" in dataset.columns
        assert backend.run_chunk(square_task, [2]) == [4]
    finally:
        backend.shutdown()


def test_sort_and_dupmark_backend_equivalence(
    reads, reference, aligned_results
):
    """Sort runs and dupmark signatures through the process backend give
    byte-identical datasets and identical stats to the sequential path."""
    from repro.core.dupmark import mark_duplicates
    from repro.core.sort import sort_dataset, verify_sorted
    from repro.formats.converters import import_reads
    from repro.storage.base import MemoryStore

    def make_aligned():
        ds = import_reads(
            reads, "beq", MemoryStore(), chunk_size=100,
            reference=reference.manifest_entry(),
        )
        ds.append_column("results", list(aligned_results))
        return ds

    sequential_ds, backend_ds = make_aligned(), make_aligned()
    backend = ProcessBackend(workers=2, batch_size=2)
    try:
        sorted_seq = sort_dataset(sequential_ds, MemoryStore())
        sorted_bknd = sort_dataset(backend_ds, MemoryStore(),
                                   backend=backend)
        stats_seq = mark_duplicates(sorted_seq)
        stats_bknd = mark_duplicates(sorted_bknd, backend=backend)
    finally:
        backend.shutdown()
    assert verify_sorted(sorted_bknd)
    for column in sorted_seq.manifest.columns:
        assert (sorted_seq.read_column(column)
                == sorted_bknd.read_column(column))
    assert (stats_seq.records, stats_seq.duplicates_marked,
            stats_seq.unmapped) == (stats_bknd.records,
                                    stats_bknd.duplicates_marked,
                                    stats_bknd.unmapped)


def test_worker_count_defaults():
    cpus = max(1, os.cpu_count() or 1)
    backend = ProcessBackend()
    assert backend.workers == cpus
    assert isinstance(backend, Backend)
