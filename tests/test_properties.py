"""Cross-cutting property tests on whole-system invariants."""

import io

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.agd.dataset import AGDDataset
from repro.align.result import AlignmentResult
from repro.core.dupmark import mark_duplicates_results
from repro.core.sort import SortConfig, sort_dataset
from repro.formats.sam import SamHeader, SamRecord, read_sam, sam_bytes
from repro.storage.base import MemoryStore
from repro.storage.ceph import CephConfig, SimulatedCephCluster

# ------------------------------------------------------------------ SAM

qnames = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126,
                           exclude_characters="\t@"),
    min_size=1, max_size=20,
)
dna = st.binary(min_size=1, max_size=40).map(
    lambda b: bytes(b"ACGT"[x % 4] for x in b)
)


@st.composite
def sam_records(draw):
    seq = draw(dna)
    return SamRecord(
        qname=draw(qnames),
        flag=draw(st.sampled_from([0, 16, 1024, 1040, 4])),
        rname="chr1",
        pos=draw(st.integers(min_value=1, max_value=10_000)),
        mapq=draw(st.integers(min_value=0, max_value=60)),
        cigar=f"{len(seq)}M",
        rnext="*",
        pnext=0,
        tlen=draw(st.integers(min_value=-500, max_value=500)),
        seq=seq,
        qual=b"I" * len(seq),
    )


class TestSamProperties:
    @given(st.lists(sam_records(), max_size=15))
    @settings(max_examples=40)
    def test_sam_file_roundtrip(self, records):
        header = SamHeader(contigs=[{"name": "chr1", "length": 20_000}])
        blob = sam_bytes(header, records)
        _, back = read_sam(io.BytesIO(blob))
        assert back == records


# ------------------------------------------------------------------ sort

positions_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),
              st.integers(min_value=0, max_value=500)),
    min_size=1, max_size=25,
)


class TestSortProperties:
    @given(positions_lists)
    @settings(max_examples=25, deadline=None)
    def test_sort_is_permutation(self, positions):
        """Sorting must be a permutation: no record lost or duplicated."""
        n = len(positions)
        dataset = AGDDataset.create(
            "perm",
            {
                "metadata": [f"r{i}".encode() for i in range(n)],
                "results": [
                    AlignmentResult(flag=0, contig_index=c, position=p,
                                    cigar=b"4M")
                    for c, p in positions
                ],
            },
            MemoryStore(),
            chunk_size=4,
        )
        out = sort_dataset(dataset, MemoryStore(),
                           SortConfig(chunks_per_superchunk=2))
        assert sorted(out.read_column("metadata")) == sorted(
            f"r{i}".encode() for i in range(n)
        )

    @given(positions_lists)
    @settings(max_examples=25, deadline=None)
    def test_sort_idempotent(self, positions):
        n = len(positions)
        dataset = AGDDataset.create(
            "idem",
            {
                "metadata": [f"r{i}".encode() for i in range(n)],
                "results": [
                    AlignmentResult(flag=0, contig_index=c, position=p,
                                    cigar=b"4M")
                    for c, p in positions
                ],
            },
            MemoryStore(),
            chunk_size=4,
        )
        once = sort_dataset(dataset, MemoryStore(), SortConfig())
        twice = sort_dataset(once, MemoryStore(), SortConfig())
        keys_once = [
            (r.contig_index, r.position) for r in once.read_column("results")
        ]
        keys_twice = [
            (r.contig_index, r.position) for r in twice.read_column("results")
        ]
        assert keys_once == keys_twice


# --------------------------------------------------------------- dupmark

result_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1),
              st.integers(min_value=0, max_value=30),
              st.booleans()),
    max_size=30,
).map(
    lambda triples: [
        AlignmentResult(flag=0x10 if rev else 0, contig_index=c,
                        position=p, cigar=b"10M")
        for c, p, rev in triples
    ]
)


class TestDupmarkProperties:
    @given(result_lists)
    @settings(max_examples=50)
    def test_first_occurrence_never_marked(self, results):
        from repro.core.dupmark import fragment_signature

        marked = mark_duplicates_results(results)
        seen = set()
        for original, out in zip(results, marked):
            sig = fragment_signature(original)
            if sig not in seen:
                assert not out.is_duplicate
                seen.add(sig)
            else:
                assert out.is_duplicate

    @given(result_lists)
    @settings(max_examples=50)
    def test_idempotent(self, results):
        once = mark_duplicates_results(results)
        twice = mark_duplicates_results(once)
        assert [r.is_duplicate for r in once] == [
            r.is_duplicate for r in twice
        ]

    @given(result_lists)
    @settings(max_examples=50)
    def test_only_flag_changes(self, results):
        marked = mark_duplicates_results(results)
        for original, out in zip(results, marked):
            assert out.position == original.position
            assert out.cigar == original.cigar
            assert out.flag & ~0x400 == original.flag & ~0x400


# ------------------------------------------------------------------ ceph

class TestCephProperties:
    @given(st.lists(st.text(min_size=1, max_size=20), min_size=1,
                    max_size=30, unique=True))
    @settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow],
              deadline=None)
    def test_placement_replicas_distinct(self, keys):
        cluster = SimulatedCephCluster(CephConfig(
            num_nodes=5, replication=3,
            disk_bandwidth=1e12, network_bandwidth=1e12,
        ))
        for key in keys:
            nodes = cluster.placement(key)
            assert len(set(nodes)) == 3
            assert all(0 <= n < 5 for n in nodes)

    @given(st.dictionaries(st.text(min_size=1, max_size=10),
                           st.binary(max_size=100), max_size=15))
    @settings(max_examples=25, deadline=None)
    def test_store_retrieves_exactly(self, blobs):
        cluster = SimulatedCephCluster(CephConfig(
            disk_bandwidth=1e12, network_bandwidth=1e12))
        for key, blob in blobs.items():
            cluster.put(key, blob)
        for key, blob in blobs.items():
            assert cluster.get(key) == blob
        assert sorted(cluster.keys()) == sorted(blobs)


# ----------------------------------------------------------------- AGD

class TestDatasetProperties:
    @given(
        st.lists(dna, min_size=1, max_size=40),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_chunking_invariant(self, sequences, chunk_size):
        """Column content is independent of chunk size."""
        quals = [b"I" * len(s) for s in sequences]
        a = AGDDataset.create(
            "a", {"bases": sequences, "qual": quals}, MemoryStore(),
            chunk_size=chunk_size,
        )
        b = AGDDataset.create(
            "b", {"bases": sequences, "qual": quals}, MemoryStore(),
            chunk_size=len(sequences),
        )
        assert a.read_column("bases") == b.read_column("bases")
        assert a.read_column("qual") == b.read_column("qual")
        assert a.total_records == b.total_records == len(sequences)
