"""End-to-end tests for the persona CLI."""

import pytest

from repro.cli import main
from repro.formats.fastq import write_fastq
from repro.genome.reference import write_fasta
from repro.genome.synthetic import synthetic_dataset


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    ref, reads, origins = synthetic_dataset(
        genome_length=15_000, coverage=2.0, seed=555, duplicate_fraction=0.1
    )
    write_fasta(ref, root / "ref.fasta")
    write_fastq(reads, root / "reads.fastq")
    return root, ref, reads


@pytest.fixture(scope="module")
def imported(workspace):
    root, ref, reads = workspace
    dataset_dir = root / "dataset"
    rc = main([
        "import-fastq", str(root / "reads.fastq"), str(dataset_dir),
        "--chunk-size", "100",
    ])
    assert rc == 0
    return root, ref, reads, dataset_dir


class TestCLI:
    def test_import(self, imported):
        _, _, reads, dataset_dir = imported
        assert (dataset_dir / "manifest.json").exists()
        from repro.agd.dataset import AGDDataset

        ds = AGDDataset.open(dataset_dir)
        assert ds.total_records == len(reads)

    def test_align(self, imported):
        root, _, _, dataset_dir = imported
        rc = main([
            "align", str(dataset_dir),
            "--reference", str(root / "ref.fasta"),
            "--threads", "2",
        ])
        assert rc == 0
        from repro.agd.dataset import AGDDataset

        ds = AGDDataset.open(dataset_dir)
        assert "results" in ds.columns

    def test_sort_and_dupmark(self, imported):
        root, _, _, dataset_dir = imported
        sorted_dir = root / "sorted"
        assert main(["sort", str(dataset_dir), str(sorted_dir)]) == 0
        from repro.agd.dataset import AGDDataset
        from repro.core.sort import verify_sorted

        ds = AGDDataset.open(sorted_dir)
        assert verify_sorted(ds)
        assert main(["dupmark", str(sorted_dir)]) == 0
        results = ds.read_column("results")
        assert any(r.is_duplicate for r in results)

    def test_exports(self, imported, capsys):
        root, _, reads, dataset_dir = imported
        for suffix in ("sam", "bam", "fastq"):
            out = root / f"out.{suffix}"
            assert main(["export", str(dataset_dir), str(out)]) == 0
            assert out.exists() and out.stat().st_size > 0

    def test_export_unknown_format(self, imported):
        root, _, _, dataset_dir = imported
        assert main(["export", str(dataset_dir), str(root / "x.xyz")]) == 2

    def test_varcall(self, imported):
        root, _, _, dataset_dir = imported
        out = root / "calls.vcf"
        rc = main([
            "varcall", str(dataset_dir), str(out),
            "--reference", str(root / "ref.fasta"),
        ])
        assert rc == 0
        assert out.read_text().startswith("##fileformat")

    def test_stats(self, imported, capsys):
        _, _, reads, dataset_dir = imported
        assert main(["stats", str(dataset_dir)]) == 0
        out = capsys.readouterr().out
        assert str(len(reads)) in out
        assert "bases" in out


class TestPipelineCommand:
    """The one-graph `persona pipeline` subcommand."""

    @pytest.fixture(scope="class")
    def pipelined(self, workspace):
        root, ref, reads = workspace
        ds_dir = root / "pipe-ds"
        rc = main([
            "import-fastq", str(root / "reads.fastq"), str(ds_dir),
            "--chunk-size", "100",
        ])
        assert rc == 0
        out_dir = root / "pipe-sorted"
        vcf = root / "pipe.vcf"
        rc = main([
            "pipeline", str(ds_dir), str(out_dir),
            "--reference", str(root / "ref.fasta"),
            "--vcf", str(vcf),
            "--backend", "thread", "--workers", "2",
            "--superchunk", "2",
        ])
        assert rc == 0
        return root, ds_dir, out_dir, vcf

    def test_writes_sorted_dataset(self, pipelined, workspace):
        _, _, out_dir, _ = pipelined
        _, _, reads = workspace
        from repro.agd.dataset import AGDDataset
        from repro.core.sort import verify_sorted

        ds = AGDDataset.open(out_dir)
        assert ds.total_records == len(reads)
        assert verify_sorted(ds)
        assert any(r.is_duplicate for r in ds.read_column("results"))

    def test_writes_vcf(self, pipelined):
        _, _, _, vcf = pipelined
        assert vcf.read_text().startswith("##fileformat")

    def test_input_dataset_gains_results(self, pipelined):
        _, ds_dir, _, _ = pipelined
        from repro.agd.dataset import AGDDataset

        assert "results" in AGDDataset.open(ds_dir).columns

    def test_reports_per_stage_breakdown(self, pipelined, capsys):
        root, _, out_dir, _ = pipelined
        rc = main([
            "pipeline", str(out_dir), str(root / "pipe-unused"),
            "--stages", "varcall",
            "--reference", str(root / "ref.fasta"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "one graph" in out
        assert "varcall" in out

    def test_subset_stages(self, pipelined, workspace, capsys):
        root, ds_dir, _, _ = pipelined
        out_dir = root / "pipe-resorted"
        rc = main([
            "pipeline", str(ds_dir), str(out_dir),
            "--stages", "sort,dupmark",
            "--superchunk", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "duplicates marked" in out
        from repro.agd.dataset import AGDDataset
        from repro.core.sort import verify_sorted

        assert verify_sorted(AGDDataset.open(out_dir))

    def test_rejects_unknown_stage(self, pipelined):
        root, ds_dir, _, _ = pipelined
        assert main([
            "pipeline", str(ds_dir), str(root / "x"),
            "--stages", "align,polish",
            "--reference", str(root / "ref.fasta"),
        ]) == 2

    def test_rejects_out_of_order_stages(self, pipelined, capsys):
        root, ds_dir, _, _ = pipelined
        assert main([
            "pipeline", str(ds_dir), str(root / "x"),
            "--stages", "sort,align",
            "--reference", str(root / "ref.fasta"),
        ]) == 2
        assert "order" in capsys.readouterr().err

    def test_dupmark_varcall_subset(self, pipelined, capsys):
        root, _, out_dir, _ = pipelined
        rc = main([
            "pipeline", str(out_dir), str(root / "unused"),
            "--stages", "dupmark,varcall",
            "--reference", str(root / "ref.fasta"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "duplicates marked" in out and "variants" in out

    def test_requires_reference_for_align(self, pipelined):
        root, ds_dir, _, _ = pipelined
        assert main([
            "pipeline", str(ds_dir), str(root / "x"),
        ]) == 2

    def test_varcall_backend_flags_match_serial(self, pipelined):
        root, _, out_dir, _ = pipelined
        serial_vcf = root / "serial.vcf"
        threaded_vcf = root / "threaded.vcf"
        base = ["varcall", str(out_dir), "--reference",
                str(root / "ref.fasta")]
        assert main(base[:2] + [str(serial_vcf)] + base[2:]) == 0
        assert main(
            base[:2] + [str(threaded_vcf)] + base[2:]
            + ["--backend", "thread", "--workers", "2"]
        ) == 0
        assert serial_vcf.read_text() == threaded_vcf.read_text()


class TestImportSamAndRechunk:
    def test_import_sam_roundtrip(self, imported, workspace):
        root, ref, reads = workspace
        _, _, _, dataset_dir = imported
        sam_out = root / "roundtrip.sam"
        assert main(["export", str(dataset_dir), str(sam_out)]) == 0
        sam_ds_dir = root / "from-sam"
        assert main([
            "import-sam", str(sam_out), str(sam_ds_dir),
            "--chunk-size", "100",
        ]) == 0
        from repro.agd.dataset import AGDDataset

        back = AGDDataset.open(sam_ds_dir)
        assert back.total_records == len(reads)
        assert "results" in back.columns

    def test_rechunk(self, imported, workspace):
        root, _, reads = workspace
        _, _, _, dataset_dir = imported
        out_dir = root / "rechunked"
        assert main([
            "rechunk", str(dataset_dir), str(out_dir),
            "--chunk-size", "37",
        ]) == 0
        from repro.agd.dataset import AGDDataset

        rechunked = AGDDataset.open(out_dir)
        assert rechunked.total_records == len(reads)
        assert rechunked.manifest.chunks[0].record_count == 37
