"""End-to-end tests for the persona CLI."""

import pytest

from repro.cli import main
from repro.formats.fastq import write_fastq
from repro.genome.reference import write_fasta
from repro.genome.synthetic import synthetic_dataset


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    ref, reads, origins = synthetic_dataset(
        genome_length=15_000, coverage=2.0, seed=555, duplicate_fraction=0.1
    )
    write_fasta(ref, root / "ref.fasta")
    write_fastq(reads, root / "reads.fastq")
    return root, ref, reads


@pytest.fixture(scope="module")
def imported(workspace):
    root, ref, reads = workspace
    dataset_dir = root / "dataset"
    rc = main([
        "import-fastq", str(root / "reads.fastq"), str(dataset_dir),
        "--chunk-size", "100",
    ])
    assert rc == 0
    return root, ref, reads, dataset_dir


class TestCLI:
    def test_import(self, imported):
        _, _, reads, dataset_dir = imported
        assert (dataset_dir / "manifest.json").exists()
        from repro.agd.dataset import AGDDataset

        ds = AGDDataset.open(dataset_dir)
        assert ds.total_records == len(reads)

    def test_align(self, imported):
        root, _, _, dataset_dir = imported
        rc = main([
            "align", str(dataset_dir),
            "--reference", str(root / "ref.fasta"),
            "--threads", "2",
        ])
        assert rc == 0
        from repro.agd.dataset import AGDDataset

        ds = AGDDataset.open(dataset_dir)
        assert "results" in ds.columns

    def test_sort_and_dupmark(self, imported):
        root, _, _, dataset_dir = imported
        sorted_dir = root / "sorted"
        assert main(["sort", str(dataset_dir), str(sorted_dir)]) == 0
        from repro.agd.dataset import AGDDataset
        from repro.core.sort import verify_sorted

        ds = AGDDataset.open(sorted_dir)
        assert verify_sorted(ds)
        assert main(["dupmark", str(sorted_dir)]) == 0
        results = ds.read_column("results")
        assert any(r.is_duplicate for r in results)

    def test_exports(self, imported, capsys):
        root, _, reads, dataset_dir = imported
        for suffix in ("sam", "bam", "fastq"):
            out = root / f"out.{suffix}"
            assert main(["export", str(dataset_dir), str(out)]) == 0
            assert out.exists() and out.stat().st_size > 0

    def test_export_unknown_format(self, imported):
        root, _, _, dataset_dir = imported
        assert main(["export", str(dataset_dir), str(root / "x.xyz")]) == 2

    def test_varcall(self, imported):
        root, _, _, dataset_dir = imported
        out = root / "calls.vcf"
        rc = main([
            "varcall", str(dataset_dir), str(out),
            "--reference", str(root / "ref.fasta"),
        ])
        assert rc == 0
        assert out.read_text().startswith("##fileformat")

    def test_stats(self, imported, capsys):
        _, _, reads, dataset_dir = imported
        assert main(["stats", str(dataset_dir)]) == 0
        out = capsys.readouterr().out
        assert str(len(reads)) in out
        assert "bases" in out


class TestImportSamAndRechunk:
    def test_import_sam_roundtrip(self, imported, workspace):
        root, ref, reads = workspace
        _, _, _, dataset_dir = imported
        sam_out = root / "roundtrip.sam"
        assert main(["export", str(dataset_dir), str(sam_out)]) == 0
        sam_ds_dir = root / "from-sam"
        assert main([
            "import-sam", str(sam_out), str(sam_ds_dir),
            "--chunk-size", "100",
        ]) == 0
        from repro.agd.dataset import AGDDataset

        back = AGDDataset.open(sam_ds_dir)
        assert back.total_records == len(reads)
        assert "results" in back.columns

    def test_rechunk(self, imported, workspace):
        root, _, reads = workspace
        _, _, _, dataset_dir = imported
        out_dir = root / "rechunked"
        assert main([
            "rechunk", str(dataset_dir), str(out_dir),
            "--chunk-size", "37",
        ]) == 0
        from repro.agd.dataset import AGDDataset

        rechunked = AGDDataset.open(out_dir)
        assert rechunked.total_records == len(reads)
        assert rechunked.manifest.chunks[0].record_count == 37
