"""Tests for the handle-passing resource manager (§4.5)."""

import threading

import pytest

from repro.dataflow.resources import Handle, ResourceManager


class TestResourceManager:
    def test_register_get(self):
        rm = ResourceManager()
        handle = rm.register("index", {"data": 1})
        assert isinstance(handle, Handle)
        assert rm.get(handle) == {"data": 1}
        assert rm.get("index") == {"data": 1}

    def test_duplicate_rejected(self):
        rm = ResourceManager()
        rm.register("x", 1)
        with pytest.raises(ValueError):
            rm.register("x", 2)

    def test_missing_handle(self):
        rm = ResourceManager()
        with pytest.raises(KeyError):
            rm.get("ghost")

    def test_contains_and_names(self):
        rm = ResourceManager()
        rm.register("b", 1)
        rm.register("a", 2)
        assert "a" in rm and "c" not in rm
        assert rm.names() == ["a", "b"]

    def test_get_or_create_single_instance(self):
        """The §4.1 property: the multi-gigabyte reference index is
        materialized exactly once per server even under racing kernels."""
        rm = ResourceManager()
        created = []

        def factory():
            created.append(1)
            return object()

        results = []
        lock = threading.Lock()

        def worker():
            handle = rm.get_or_create("shared", factory)
            with lock:
                results.append(rm.get(handle))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(created) == 1
        assert all(r is results[0] for r in results)

    def test_handles_are_strings(self):
        """Handles pass through queues as plain values (the paper's
        tensors-of-handles trick)."""
        rm = ResourceManager()
        handle = rm.register("pool", [1, 2])
        assert rm.get(str(handle)) == [1, 2]
