"""Tests for the pileup variant caller: planted SNPs must be recovered."""

import pytest

from repro.core.pipelines import align_dataset, build_snap_aligner
from repro.core.varcall import VarCallConfig, call_variants, pileup_dataset
from repro.formats.converters import import_reads
from repro.genome.reference import reference_from_sequences
from repro.genome.synthetic import ErrorModel, ReadSimulator, synthetic_reference
from repro.storage.base import MemoryStore


def _mutate(base: int) -> int:
    return {65: 67, 67: 71, 71: 84, 84: 65}[base]  # A->C->G->T->A


@pytest.fixture(scope="module")
def snp_setup():
    """A 'patient' genome with 5 planted SNPs, sequenced error-free and
    aligned against the unmutated reference."""
    reference = synthetic_reference(12_000, seed=771)
    patient_seq = bytearray(reference.concatenated())
    snp_positions = [1000, 3000, 5000, 7000, 9000]
    truth = {}
    for pos in snp_positions:
        original = patient_seq[pos]
        patient_seq[pos] = _mutate(original)
        truth[pos] = (chr(original), chr(patient_seq[pos]))
    patient = reference_from_sequences([("chr1", bytes(patient_seq))])
    sim = ReadSimulator(
        patient,
        read_length=101,
        error_model=ErrorModel(substitution_rate=0.0, indel_rate=0.0,
                               n_rate=0.0),
        seed=772,
    )
    reads, _ = sim.simulate(sim.reads_for_coverage(12.0))
    dataset = import_reads(
        reads, "patient", MemoryStore(), chunk_size=200,
        reference=reference.manifest_entry(),
    )
    align_dataset(dataset, build_snap_aligner(reference))
    return reference, dataset, truth


class TestPileup:
    def test_depth_roughly_coverage(self, snp_setup):
        reference, dataset, _ = snp_setup
        columns = pileup_dataset(dataset)
        # Averaged over the genome interior, depth must be near 12x.
        # (Narrow windows fluctuate wildly — coverage is spatially
        # correlated — so sample broadly.)
        depths = [
            columns[(0, pos)].depth
            for pos in range(1000, 11000, 13)
            if (0, pos) in columns
        ]
        assert depths
        mean_depth = sum(depths) / len(depths)
        assert 9 < mean_depth < 15

    def test_counts_sum_to_depth(self, snp_setup):
        _, dataset, _ = snp_setup
        columns = pileup_dataset(dataset)
        for key in list(columns)[:200]:
            column = columns[key]
            assert sum(column.counts.values()) == column.depth


class TestCalling:
    def test_planted_snps_called(self, snp_setup):
        reference, dataset, truth = snp_setup
        variants = call_variants(dataset, reference)
        called = {v.pos - 1: (v.ref, v.alt) for v in variants}
        for pos, (ref_base, alt_base) in truth.items():
            assert pos in called, f"missed SNP at {pos}"
            assert called[pos] == (ref_base, alt_base)

    def test_no_false_positives_far_from_snps(self, snp_setup):
        reference, dataset, truth = snp_setup
        variants = call_variants(dataset, reference)
        for v in variants:
            assert any(abs((v.pos - 1) - p) <= 2 for p in truth), (
                f"unexpected variant at {v.pos - 1}"
            )

    def test_clean_data_calls_nothing(self, aligned_dataset, reference):
        variants = call_variants(aligned_dataset, reference,
                                 VarCallConfig(min_depth=3))
        # Reads have a 0.5% error rate; the 60% fraction threshold keeps
        # scattered errors out.
        assert len(variants) <= 2

    def test_min_depth_threshold(self, snp_setup):
        reference, dataset, _ = snp_setup
        strict = call_variants(
            dataset, reference, VarCallConfig(min_depth=1000)
        )
        assert strict == []

    def test_variants_sorted(self, snp_setup):
        reference, dataset, _ = snp_setup
        variants = call_variants(dataset, reference)
        keys = [(v.chrom, v.pos) for v in variants]
        assert keys == sorted(keys)

    def test_duplicates_skipped(self, snp_setup):
        reference, dataset, truth = snp_setup
        config = VarCallConfig(skip_duplicates=True)
        variants = call_variants(dataset, reference, config)
        assert len(variants) >= len(truth)
