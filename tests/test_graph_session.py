"""Tests for graph assembly and session execution (§4.1, §5.2)."""

import time

import pytest

from repro.dataflow.errors import PipelineError
from repro.dataflow.graph import Graph, GraphError
from repro.dataflow.node import CollectSink, IterableSource, LambdaNode, Node
from repro.dataflow.session import Session


def linear_graph(items, fn, parallelism=1):
    g = Graph("t")
    q1 = g.queue("a", 4)
    q2 = g.queue("b", 4)
    g.add(IterableSource("src", items), output=q1)
    g.add(LambdaNode("fn", fn, parallelism=parallelism), input=q1, output=q2)
    sink = CollectSink()
    g.add(sink, input=q2)
    return g, sink


class TestGraphWiring:
    def test_duplicate_node_name(self):
        g = Graph("t")
        q = g.queue("q", 1)
        g.add(IterableSource("x", []), output=q)
        with pytest.raises(GraphError):
            g.add(IterableSource("x", []), output=q)

    def test_duplicate_queue_name(self):
        g = Graph("t")
        g.queue("q", 1)
        with pytest.raises(GraphError):
            g.queue("q", 1)

    def test_foreign_queue_rejected(self):
        g1, g2 = Graph("a"), Graph("b")
        q = g1.queue("q", 1)
        with pytest.raises(GraphError):
            g2.add(IterableSource("s", []), output=q)

    def test_unconsumed_queue_rejected(self):
        g = Graph("t")
        q = g.queue("q", 1)
        g.add(IterableSource("s", [1]), output=q)
        with pytest.raises(GraphError):
            g.validate()

    def test_unproduced_queue_rejected(self):
        g = Graph("t")
        q = g.queue("q", 1)
        g.add(CollectSink("sink"), input=q)
        with pytest.raises(GraphError):
            g.validate()

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            Graph("t").validate()

    def test_no_source_rejected(self):
        g = Graph("t")
        q = g.queue("q", 1)
        node = LambdaNode("loop", lambda x: x)
        g.add(node, input=q, output=q)
        with pytest.raises(GraphError):
            g.validate()


class TestSessionExecution:
    def test_linear_pipeline(self):
        g, sink = linear_graph(range(50), lambda x: x + 1)
        result = Session(g).run(timeout=10)
        assert sorted(sink.collected) == list(range(1, 51))
        assert result.wall_seconds >= 0

    def test_parallel_transform(self):
        g, sink = linear_graph(range(100), lambda x: x * 2, parallelism=4)
        Session(g).run(timeout=10)
        assert sorted(sink.collected) == [x * 2 for x in range(100)]

    def test_filtering_node(self):
        g, sink = linear_graph(range(20), lambda x: x if x % 2 == 0 else None)
        Session(g).run(timeout=10)
        assert sorted(sink.collected) == list(range(0, 20, 2))

    def test_stats_report(self):
        g, sink = linear_graph(range(10), lambda x: x)
        result = Session(g).run(timeout=10)
        assert result.report["nodes"]["fn"]["items_in"] == 10
        assert result.report["nodes"]["fn"]["items_out"] == 10
        assert result.report["queues"]["a"]["total_enqueued"] == 10

    def test_error_aborts_pipeline(self):
        def explode(x):
            if x == 5:
                raise ValueError("item 5 is cursed")
            return x

        g, sink = linear_graph(range(100), explode)
        with pytest.raises(PipelineError) as excinfo:
            Session(g).run(timeout=10)
        assert excinfo.value.node_name == "fn"
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_error_in_source(self):
        class BadSource(Node):
            def generate(self, ctx):
                yield 1
                raise RuntimeError("source died")

        g = Graph("t")
        q = g.queue("q", 2)
        g.add(BadSource("bad"), output=q)
        sink = CollectSink()
        g.add(sink, input=q)
        with pytest.raises(PipelineError):
            Session(g).run(timeout=10)

    def test_timeout(self):
        class Stuck(Node):
            def generate(self, ctx):
                time.sleep(30)
                yield 1

        g = Graph("t")
        q = g.queue("q", 1)
        g.add(Stuck("stuck"), output=q)
        g.add(CollectSink(), input=q)
        with pytest.raises(TimeoutError):
            Session(g).run(timeout=0.2)

    def test_finalize_flush(self):
        class Batcher(Node):
            def __init__(self):
                super().__init__("batcher")
                self._batch = []

            def process(self, item, ctx):
                self._batch.append(item)
                if len(self._batch) == 3:
                    out = [tuple(self._batch)]
                    self._batch = []
                    return out
                return None

            def finalize(self, ctx):
                if self._batch:
                    return [tuple(self._batch)]
                return None

        g = Graph("t")
        q1 = g.queue("a", 4)
        q2 = g.queue("b", 4)
        g.add(IterableSource("src", range(7)), output=q1)
        g.add(Batcher(), input=q1, output=q2)
        sink = CollectSink()
        g.add(sink, input=q2)
        Session(g).run(timeout=10)
        assert sink.collected == [(0, 1, 2), (3, 4, 5), (6,)]

    def test_queue_depth_bounded_during_run(self):
        g, sink = linear_graph(range(200), lambda x: x)
        Session(g).run(timeout=10)
        assert g.queues[0].max_depth <= g.queues[0].capacity

    def test_resources_shared_across_replicas(self):
        g = Graph("t")
        handle = g.register_resource("shared_list", [])

        class Appender(Node):
            def process(self, item, ctx):
                ctx.resources.get(handle).append(item)
                return None

        q = g.queue("q", 4)
        g.add(IterableSource("src", range(20)), output=q)
        g.add(Appender("app", parallelism=3), input=q)
        Session(g).run(timeout=10)
        assert sorted(g.resources.get(handle)) == list(range(20))
