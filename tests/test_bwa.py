"""Tests for the BWA-MEM-like aligner: seeding, chaining, paired mode."""

import pytest

from repro.align.bwa import BwaConfig, BwaMemAligner, FMIndex
from repro.genome.sequence import reverse_complement
from repro.genome.synthetic import ReadSimulator, synthetic_reference


class TestSeeding:
    def test_seeds_found_for_genomic_read(self, bwa_aligner, reference):
        genome = reference.concatenated()
        read = genome[4000:4101]
        seeds = bwa_aligner.find_seeds(read)
        assert seeds
        # Each seed's positions must truly match the read substring.
        for seed in seeds:
            fragment = read[seed.read_offset : seed.read_offset + seed.length]
            for pos in seed.positions:
                assert genome[pos : pos + seed.length] == fragment

    def test_min_seed_length_respected(self, bwa_aligner):
        for seed in bwa_aligner.find_seeds(b"ACGT" * 26):
            assert seed.length >= bwa_aligner.config.min_seed_length

    def test_no_seeds_for_garbage(self, fm_index):
        aligner = BwaMemAligner(fm_index, BwaConfig(min_seed_length=30))
        # With a high seed threshold a random read finds nothing.
        import numpy as np

        rng = np.random.default_rng(5)
        read = bytes(b"ACGT"[x] for x in rng.integers(0, 4, size=101))
        assert aligner.find_seeds(read) == []


class TestSingleEnd:
    def test_planted_reads(self, bwa_aligner, reference, reads, origins):
        exact = 0
        for read, origin in zip(reads[:100], origins[:100]):
            result = bwa_aligner.align_read(read.bases)
            assert result.is_aligned
            contig, local = reference.to_local(origin.global_pos)
            if result.position == local and result.is_reverse == origin.reverse:
                exact += 1
        assert exact >= 97

    def test_reverse_strand(self, bwa_aligner, reference):
        genome = reference.concatenated()
        result = bwa_aligner.align_read(reverse_complement(genome[3000:3101]))
        assert result.is_aligned and result.is_reverse

    def test_agrees_with_snap(self, bwa_aligner, snap_aligner, reads):
        agree = total = 0
        for read in reads[:80]:
            b = bwa_aligner.align_read(read.bases)
            s = snap_aligner.align_read(read.bases)
            if b.is_aligned and s.is_aligned:
                total += 1
                if (b.contig_index, b.position) == (s.contig_index, s.position):
                    agree += 1
        assert total > 70
        assert agree / total > 0.95

    def test_mutated_read(self, bwa_aligner, reference):
        genome = reference.concatenated()
        read = bytearray(genome[8000:8101])
        read[30] = ord("A") if read[30] != ord("A") else ord("C")
        result = bwa_aligner.align_read(bytes(read))
        assert result.is_aligned
        assert result.position == reference.to_local(8000)[1]


class TestPaired:
    @pytest.fixture(scope="class")
    def paired_setup(self):
        ref = synthetic_reference(25_000, seed=201)
        sim = ReadSimulator(ref, paired=True, insert_size_mean=320,
                            insert_size_sd=25, seed=202)
        reads, origins = sim.simulate(120)
        aligner = BwaMemAligner(FMIndex(ref))
        return ref, reads, origins, aligner

    def test_insert_inference(self, paired_setup):
        _, reads, _, aligner = paired_setup
        pairs = [(reads[i].bases, reads[i + 1].bases) for i in range(0, 60, 2)]
        model = aligner.infer_insert_size(pairs)
        assert model.samples >= 20
        assert 280 < model.mean < 360
        assert model.std < 80

    def test_insert_window(self, paired_setup):
        _, reads, _, aligner = paired_setup
        pairs = [(reads[i].bases, reads[i + 1].bases) for i in range(0, 40, 2)]
        model = aligner.infer_insert_size(pairs)
        lo, hi = model.window()
        assert lo < model.mean < hi

    def test_pair_flags(self, paired_setup):
        from repro.align.result import (
            FLAG_FIRST_IN_PAIR,
            FLAG_PAIRED,
            FLAG_PROPER_PAIR,
            FLAG_SECOND_IN_PAIR,
        )

        ref, reads, origins, aligner = paired_setup
        aligner.infer_insert_size(
            [(reads[i].bases, reads[i + 1].bases) for i in range(0, 40, 2)]
        )
        proper = 0
        for i in range(0, 60, 2):
            r1, r2 = aligner.align_pair(reads[i].bases, reads[i + 1].bases)
            assert r1.flag & FLAG_PAIRED and r2.flag & FLAG_PAIRED
            assert r1.flag & FLAG_FIRST_IN_PAIR
            assert r2.flag & FLAG_SECOND_IN_PAIR
            if r1.flag & FLAG_PROPER_PAIR:
                proper += 1
        assert proper >= 25  # at least ~83% proper pairs

    def test_template_length_signs(self, paired_setup):
        ref, reads, origins, aligner = paired_setup
        aligner.infer_insert_size(
            [(reads[i].bases, reads[i + 1].bases) for i in range(0, 40, 2)]
        )
        r1, r2 = aligner.align_pair(reads[0].bases, reads[1].bases)
        if r1.is_aligned and r2.is_aligned:
            assert r1.template_length == -r2.template_length
            assert abs(r1.template_length) > 0

    def test_mate_linkage(self, paired_setup):
        ref, reads, origins, aligner = paired_setup
        aligner.infer_insert_size(
            [(reads[i].bases, reads[i + 1].bases) for i in range(0, 40, 2)]
        )
        r1, r2 = aligner.align_pair(reads[2].bases, reads[3].bases)
        if r1.is_aligned and r2.is_aligned:
            assert r1.next_position == r2.position
            assert r2.next_position == r1.position
