"""Tests for the generic paired-end orchestration layer."""

import pytest

from repro.align.paired import InsertWindow, PairedAligner
from repro.align.result import (
    FLAG_MATE_UNMAPPED,
    FLAG_PROPER_PAIR,
    FLAG_UNMAPPED,
)
from repro.align.snap import SeedIndex, SnapAligner
from repro.genome.synthetic import ReadSimulator, synthetic_reference


@pytest.fixture(scope="module")
def setup():
    ref = synthetic_reference(25_000, seed=301)
    sim = ReadSimulator(ref, paired=True, insert_size_mean=300,
                        insert_size_sd=20, seed=302)
    reads, origins = sim.simulate(100)
    snap = SnapAligner(SeedIndex(ref))
    paired = PairedAligner(snap, InsertWindow(220, 400))
    return ref, reads, origins, paired


class TestPairedAligner:
    def test_both_mates_aligned(self, setup):
        ref, reads, origins, paired = setup
        for i in range(0, 40, 2):
            r1, r2 = paired.align_pair(reads[i].bases, reads[i + 1].bases)
            assert r1.is_aligned and r2.is_aligned
            c1, l1 = ref.to_local(origins[i].global_pos)
            assert r1.position == l1

    def test_proper_pair_rate(self, setup):
        ref, reads, origins, paired = setup
        proper = 0
        for i in range(0, 100, 2):
            r1, _ = paired.align_pair(reads[i].bases, reads[i + 1].bases)
            if r1.flag & FLAG_PROPER_PAIR:
                proper += 1
        assert proper >= 42  # >=84%

    def test_insert_window_validation(self):
        window = InsertWindow(100, 200)
        assert window.contains(150)
        assert not window.contains(99)
        assert not window.contains(201)

    def test_mate_rescue(self, setup):
        """An unalignable mate is rescued by scanning the insert window."""
        ref, reads, origins, paired = setup

        class HalfBlindAligner:
            """Aligns only the first mate; fails the second."""

            def __init__(self, inner, fail_reads):
                self.inner = inner
                self.reference = inner.reference
                self.fail_reads = fail_reads

            def align_global(self, bases):
                if bases in self.fail_reads:
                    return None
                return self.inner.align_global(bases)

        snap = paired.aligner
        r1_bases, r2_bases = reads[0].bases, reads[1].bases
        blind = HalfBlindAligner(snap, {r2_bases})
        rescue_paired = PairedAligner(blind, InsertWindow(220, 400))
        r1, r2 = rescue_paired.align_pair(r1_bases, r2_bases)
        assert r1.is_aligned
        assert r2.is_aligned, "mate rescue failed"
        c2, l2 = ref.to_local(origins[1].global_pos)
        assert r2.position == l2

    def test_both_unmapped(self, setup):
        _, _, _, paired = setup
        import numpy as np

        rng = np.random.default_rng(9)
        junk1 = bytes(b"ACGT"[x] for x in rng.integers(0, 4, size=101))
        junk2 = bytes(b"ACGT"[x] for x in rng.integers(0, 4, size=101))
        r1, r2 = paired.align_pair(junk1, junk2)
        if not r1.is_aligned and not r2.is_aligned:
            assert r1.flag & FLAG_UNMAPPED
            assert r1.flag & FLAG_MATE_UNMAPPED

    def test_orientation_forward_reverse(self, setup):
        ref, reads, origins, paired = setup
        for i in range(0, 20, 2):
            r1, r2 = paired.align_pair(reads[i].bases, reads[i + 1].bases)
            if r1.flag & FLAG_PROPER_PAIR:
                assert r1.is_reverse != r2.is_reverse
