"""Tests for metrics: utilization tracing, microarch profiles, rates."""

import time

import pytest

from repro.dataflow.executor import BusyCounter, Executor
from repro.metrics.cputrace import UtilizationSampler, UtilizationTrace
from repro.metrics.microarch import (
    OP_WEIGHTS,
    SPEC_REFERENCE,
    hyperthreading_shift,
    profile_bwa,
    profile_snap,
)
from repro.metrics.throughput import (
    RateMeter,
    format_bases_rate,
    format_bytes_rate,
)


class TestUtilizationTrace:
    def test_utilizations_normalized(self):
        trace = UtilizationTrace(interval=0.01, samples=[0, 1, 2, 4, 2],
                                 capacity=2)
        utils = trace.utilizations()
        assert utils == [0.0, 0.5, 1.0, 1.0, 1.0]
        assert trace.mean_utilization == pytest.approx(0.7)

    def test_dip_count(self):
        trace = UtilizationTrace(
            interval=0.01,
            samples=[2, 2, 0, 0, 2, 2, 0, 2],
            capacity=2,
        )
        assert trace.dip_count(threshold=0.5) == 2

    def test_flat_trace_no_dips(self):
        trace = UtilizationTrace(interval=0.01, samples=[2] * 10, capacity=2)
        assert trace.dip_count() == 0

    def test_ascii_plot(self):
        trace = UtilizationTrace(interval=0.01, samples=[1, 2, 1], capacity=2)
        plot = trace.ascii_plot(width=10, height=4)
        assert "#" in plot

    def test_ascii_plot_empty(self):
        trace = UtilizationTrace(interval=0.01, samples=[], capacity=2)
        assert "no samples" in trace.ascii_plot()

    def test_ascii_plot_bucketing(self):
        trace = UtilizationTrace(interval=0.01, samples=[1] * 500, capacity=1)
        plot = trace.ascii_plot(width=50, height=3)
        assert len(plot.splitlines()[0]) <= 60


class TestSampler:
    def test_samples_busy_executor(self):
        counter = BusyCounter()
        executor = Executor(2, busy_counter=counter)
        with UtilizationSampler([counter], capacity=2, interval=0.005) as s:
            executor.run_chunk([lambda: time.sleep(0.05)] * 2)
        trace = s.trace
        assert trace.samples
        assert max(trace.samples) >= 1
        executor.shutdown()

    def test_validation(self):
        with pytest.raises(ValueError):
            UtilizationSampler([], capacity=1)
        with pytest.raises(ValueError):
            UtilizationSampler([BusyCounter()], capacity=1, interval=0)


class TestMicroarch:
    def test_weights_sum_to_one(self):
        for name, w in OP_WEIGHTS.items():
            total = (w.retiring + w.frontend + w.bad_speculation
                     + w.backend_core + w.backend_memory)
            assert total == pytest.approx(1.0, abs=0.011), name

    def test_snap_profile_core_bound(self, snap_aligner, reads):
        """Fig. 8: SNAP backend-bound 'due to the core and not memory'."""
        profile = profile_snap(snap_aligner, [r.bases for r in reads[:60]])
        assert profile.backend_bound > 0.3
        assert profile.backend_core > profile.backend_memory

    def test_bwa_profile_memory_bound(self, bwa_aligner, reads):
        """Fig. 8: 'In BWA-MEM, the system is much more memory bound.'"""
        profile = profile_bwa(bwa_aligner, [r.bases for r in reads[:40]])
        assert profile.backend_bound > 0.3
        assert profile.backend_memory > profile.backend_core

    def test_contrast_emerges_from_op_mix(self, snap_aligner, bwa_aligner, reads):
        batch = [r.bases for r in reads[:40]]
        snap = profile_snap(snap_aligner, batch)
        bwa = profile_bwa(bwa_aligner, batch)
        assert bwa.memory_fraction_of_backend > snap.memory_fraction_of_backend

    def test_ht_shift_reduces_memory_stall(self, snap_aligner, reads):
        profile = profile_snap(snap_aligner, [r.bases for r in reads[:30]])
        shifted = hyperthreading_shift(profile)
        assert shifted.backend_memory < profile.backend_memory
        assert shifted.retiring > profile.retiring

    def test_spec_references_present(self):
        assert "mcf (memory)" in SPEC_REFERENCE
        row = SPEC_REFERENCE["mcf (memory)"]
        assert row["backend_memory"] > row["backend_core"]

    def test_empty_reads_rejected(self, snap_aligner):
        with pytest.raises(ValueError):
            profile_snap(snap_aligner, [])


class TestRateMeter:
    def test_basic(self):
        meter = RateMeter()
        with meter:
            meter.add(1000)
            time.sleep(0.02)
        assert meter.count == 1000
        assert meter.elapsed >= 0.02
        assert meter.rate > 0

    def test_double_start_rejected(self):
        meter = RateMeter().start()
        with pytest.raises(RuntimeError):
            meter.start()

    def test_stop_without_start(self):
        with pytest.raises(RuntimeError):
            RateMeter().stop()

    def test_formatting(self):
        assert format_bases_rate(1.353e9) == "1.353 Gbases/s"
        assert format_bases_rate(45.45e6) == "45.45 Mbases/s"
        assert format_bases_rate(1500) == "1.5 Kbases/s"
        assert format_bases_rate(10) == "10 bases/s"
        assert format_bytes_rate(6e9) == "6.00 GB/s"
        assert format_bytes_rate(360e6) == "360.0 MB/s"
