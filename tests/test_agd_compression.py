"""Tests for AGD per-column compression codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.agd.compression import (
    GZIP,
    LZMA,
    NONE,
    Codec,
    UnknownCodecError,
    available_codecs,
    get_codec,
    register_codec,
)


class TestCodecs:
    @pytest.mark.parametrize("codec", [GZIP, LZMA, NONE])
    def test_roundtrip(self, codec):
        data = b"ACGT" * 1000 + b"some incompressible \x00\xff tail"
        assert codec.decompress(codec.compress(data)) == data

    def test_gzip_compresses_repetitive(self):
        data = b"ACGT" * 10_000
        assert len(GZIP.compress(data)) < len(data) / 5

    def test_lzma_beats_gzip_on_text(self):
        # The §3 tradeoff: lzma smaller, slower.
        data = (b"read.%d some metadata here\n" * 500) % tuple(range(500))
        assert len(LZMA.compress(data)) <= len(GZIP.compress(data))

    def test_none_is_identity(self):
        data = b"anything"
        assert NONE.compress(data) == data

    def test_lookup(self):
        assert get_codec("gzip") is GZIP
        assert get_codec("lzma") is LZMA
        assert get_codec("none") is NONE

    def test_unknown(self):
        with pytest.raises(UnknownCodecError):
            get_codec("zstd")

    def test_available(self):
        assert set(available_codecs()) >= {"gzip", "lzma", "none"}

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_codec(Codec("gzip", bytes, bytes))

    def test_register_new(self):
        name = "xor-test-codec"
        if name not in available_codecs():
            xor = Codec(
                name,
                lambda d: bytes(b ^ 0x55 for b in d),
                lambda d: bytes(b ^ 0x55 for b in d),
            )
            register_codec(xor)
        codec = get_codec(name)
        assert codec.decompress(codec.compress(b"hello")) == b"hello"

    @given(st.binary(max_size=5000))
    def test_gzip_roundtrip_property(self, data):
        assert GZIP.decompress(GZIP.compress(data)) == data
