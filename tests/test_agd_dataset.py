"""Tests for the high-level AGD dataset API."""

import pytest

from repro.agd.compression import LZMA
from repro.agd.dataset import AGDDataset
from repro.agd.manifest import ManifestError
from repro.align.result import AlignmentResult
from repro.storage.base import DirectoryStore, MemoryStore


@pytest.fixture()
def small_dataset():
    store = MemoryStore()
    n = 25
    return AGDDataset.create(
        "small",
        {
            "bases": [b"ACGT" * (i % 5 + 1) for i in range(n)],
            "qual": [b"I" * 4 * (i % 5 + 1) for i in range(n)],
            "metadata": [f"r{i}".encode() for i in range(n)],
        },
        store,
        chunk_size=10,
    )


class TestCreate:
    def test_chunking(self, small_dataset):
        assert small_dataset.num_chunks == 3
        assert small_dataset.total_records == 25
        counts = [e.record_count for e in small_dataset.manifest.chunks]
        assert counts == [10, 10, 5]

    def test_row_grouping_enforced(self):
        with pytest.raises(ManifestError):
            AGDDataset.create(
                "bad", {"bases": [b"A"], "qual": [b"I", b"I"]}, MemoryStore()
            )

    def test_empty_rejected(self):
        with pytest.raises(ManifestError):
            AGDDataset.create("bad", {"bases": []}, MemoryStore())
        with pytest.raises(ManifestError):
            AGDDataset.create("bad", {}, MemoryStore())

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            AGDDataset.create("bad", {"bases": [b"A"]}, MemoryStore(),
                              chunk_size=0)

    def test_per_column_codec(self):
        """§3: 'a user may compress the bases column with gzip while using
        LZMA for the metadata'."""
        store = MemoryStore()
        ds = AGDDataset.create(
            "codecs",
            {"bases": [b"ACGT" * 100] * 10, "metadata": [b"m" * 50] * 10},
            store,
            codecs={"metadata": LZMA},
        )
        from repro.agd.chunk import read_chunk_header

        bases_header = read_chunk_header(store.get("codecs-0.bases"))
        meta_header = read_chunk_header(store.get("codecs-0.metadata"))
        assert bases_header.codec_name == "gzip"
        assert meta_header.codec_name == "lzma"
        assert ds.read_column("metadata") == [b"m" * 50] * 10


class TestRead:
    def test_read_column(self, small_dataset):
        bases = small_dataset.read_column("bases")
        assert len(bases) == 25
        assert bases[7] == b"ACGT" * 3

    def test_iter_chunks(self, small_dataset):
        chunks = list(small_dataset.iter_chunks("metadata"))
        assert [len(c) for c in chunks] == [10, 10, 5]
        assert chunks[1].first_ordinal == 10

    def test_random_access(self, small_dataset):
        for ordinal in (0, 9, 10, 24):
            assert small_dataset.read_record("metadata", ordinal) == (
                f"r{ordinal}".encode()
            )

    def test_random_access_bases(self, small_dataset):
        assert small_dataset.read_record("bases", 13) == b"ACGT" * 4

    def test_missing_column(self, small_dataset):
        with pytest.raises(ManifestError):
            small_dataset.read_chunk("results", 0)

    def test_selective_column_read_touches_one_file_per_chunk(self):
        """Column independence (§3): reading qual must not read bases."""
        class SpyStore(MemoryStore):
            def __init__(self):
                super().__init__()
                self.gets = []

            def get(self, key):
                self.gets.append(key)
                return super().get(key)

        store = SpyStore()
        ds = AGDDataset.create(
            "spy", {"bases": [b"A"] * 4, "qual": [b"I"] * 4}, store,
            chunk_size=2,
        )
        store.gets.clear()
        ds.read_column("qual")
        assert all(key.endswith(".qual") for key in store.gets)


class TestExtend:
    def test_append_results_column(self, small_dataset):
        results = [AlignmentResult() for _ in range(25)]
        small_dataset.append_column("results", results)
        assert small_dataset.manifest.has_column("results")
        assert small_dataset.read_column("results") == results

    def test_append_wrong_count(self, small_dataset):
        with pytest.raises(ManifestError):
            small_dataset.append_column("results", [AlignmentResult()])

    def test_replace_chunk(self, small_dataset):
        new_metas = [f"x{i}".encode() for i in range(10)]
        small_dataset.replace_column_chunk("metadata", 1, new_metas)
        column = small_dataset.read_column("metadata")
        assert column[10:20] == new_metas
        assert column[0] == b"r0"

    def test_replace_chunk_wrong_count(self, small_dataset):
        with pytest.raises(ManifestError):
            small_dataset.replace_column_chunk("metadata", 1, [b"x"])


class TestPersistence:
    def test_directory_roundtrip(self, tmp_path):
        store = DirectoryStore(tmp_path)
        ds = AGDDataset.create(
            "disk", {"bases": [b"ACGT"] * 5, "qual": [b"IIII"] * 5},
            store, chunk_size=2,
        )
        ds.save_manifest(tmp_path)
        back = AGDDataset.open(tmp_path)
        assert back.total_records == 5
        assert back.read_column("bases") == [b"ACGT"] * 5

    def test_size_accounting(self, small_dataset):
        per_column = sum(
            small_dataset.column_bytes(c) for c in small_dataset.columns
        )
        assert small_dataset.total_bytes() == per_column
        assert per_column > 0


class TestRechunk:
    def test_rechunk_preserves_rows(self, small_dataset):
        rechunked = small_dataset.rechunk(7)
        assert rechunked.total_records == small_dataset.total_records
        assert rechunked.num_chunks == 4  # 25 records / 7
        for column in small_dataset.columns:
            assert rechunked.read_column(column) == (
                small_dataset.read_column(column)
            )

    def test_rechunk_metadata_propagates(self, small_dataset):
        small_dataset.manifest.reference = [{"name": "c", "length": 9}]
        rechunked = small_dataset.rechunk(50)
        assert rechunked.manifest.reference == [{"name": "c", "length": 9}]
        assert rechunked.num_chunks == 1

    def test_rechunk_invalid(self, small_dataset):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            small_dataset.rechunk(0)

    def test_rechunk_original_untouched(self, small_dataset):
        before = small_dataset.num_chunks
        small_dataset.rechunk(3)
        assert small_dataset.num_chunks == before
