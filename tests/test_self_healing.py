"""Self-healing broker plane: deadlines, quarantine, spill, admission.

The acceptance properties of the robustness layer:

* a delivery held past its deadline fences the holder, requeues its
  chunks (fresh tags, so stale acks never credit reissued work), and
  the run still completes byte-identical to the single-``Session`` run;
* a poison chunk that kills every worker that touches it is quarantined
  to the edge's dead-letter queue after ``max_redeliveries`` strikes,
  journaled to the run ledger, and the run completes DEGRADED — byte-
  identical to a clean run over the surviving chunks;
* adopted shared-memory backlog past the spill watermark drains to disk
  and is still delivered byte-identical (spill-then-pull);
* a worker admitted into a RUNNING placed pipeline pulls real work and
  the combined output stays byte-identical.
"""

from __future__ import annotations

import io
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.cluster.broker import (
    Broker,
    BrokerError,
    BrokerServer,
    LocalBrokerClient,
    TcpBrokerClient,
)
from repro.cluster.multiserver import (
    WorkerKilled,
    join_placed_worker,
    run_placed_pipeline,
)
from repro.cluster.placement import WORK_EDGE, PlacementPlan
from repro.core.ledger import CHAOS_MODE_ENV, CRASH_ENV, RunLedger
from repro.core.pipelines import run_pipeline
from repro.core.sort import SortConfig, verify_sorted
from repro.core.subgraphs import AlignGraphConfig
from repro.dataflow import shm as shm_plane
from repro.dataflow.queues import (
    DELIVERY_FENCED,
    EDGE_ABORTED,
    EDGE_CLOSED,
    PUBLISH_OK,
    PULL_EMPTY,
    PULL_OK,
)
from repro.formats.converters import import_reads
from repro.formats.vcf import write_vcf
from repro.genome.reference import write_fasta
from repro.genome.synthetic import synthetic_dataset
from repro.storage.base import DirectoryStore, MemoryStore

SORT_CONFIG = SortConfig(chunks_per_superchunk=2)

#: Strictly FIFO per-worker processing: one chunk in flight per node, so
#: a worker's held set is fixed the moment it stalls and the broker's
#: front-of-edge requeue order is observable.
SHALLOW_ALIGN = AlignGraphConfig(
    executor_threads=1, aligner_nodes=1, reader_nodes=1, parser_nodes=1,
    queue_depth=1,
)


def _pull_until(client, edge: str, want=PULL_OK, tries: int = 400,
                pause: float = 0.01):
    """Poll an edge until ``want`` comes back (polling also drives the
    broker's piggybacked servicing pass: expiry, backoff promotion)."""
    last = None
    for _ in range(tries):
        last = client.pull(edge, timeout=0.01)
        if last[0] == want:
            return last
        time.sleep(pause)
    raise AssertionError(f"never saw {want!r} on {edge!r}; last {last!r}")


# ------------------------------------------------------------ deadlines


class TestDeliveryDeadlines:
    def test_fixed_deadline_fences_and_redelivers(self):
        broker = Broker(delivery_deadline=0.08, backoff_base=0.01,
                        backoff_cap=0.05)
        broker.create_edge("e", capacity=8, producers=1)
        producer = LocalBrokerClient(broker)
        slow = LocalBrokerClient(broker)
        survivor = LocalBrokerClient(broker)
        producer.attach_producer("e")
        assert producer.publish("e", "k", b"payload") == PUBLISH_OK

        status, tag1, key, _ = slow.pull("e")
        assert (status, key) == (PULL_OK, "k")
        time.sleep(0.12)  # hold past the 80ms deadline

        status, tag2, key, payload = _pull_until(survivor, "e")
        assert key == "k" and payload == b"payload"
        assert tag2 != tag1  # fresh tag on reissue
        assert broker.is_fenced(slow.consumer)
        assert slow.pull("e")[0] == DELIVERY_FENCED

        # The fenced worker's stale ack must not credit the reissue.
        slow.ack("e", tag2)
        assert broker.stats()["e"]["unacked"] == 1
        survivor.ack("e", tag2)
        producer.producer_done("e")
        assert survivor.pull("e")[0] == EDGE_CLOSED

        stats = broker.stats()["e"]
        assert stats["total_expired"] >= 1
        assert stats["total_redelivered"] >= 1

    def test_auto_deadline_is_lenient_until_estimate_warms(self):
        broker = Broker(delivery_deadline="auto", deadline_min=0.05,
                        deadline_max=600.0)
        broker.create_edge("e", capacity=4, producers=1)
        producer = LocalBrokerClient(broker)
        worker = LocalBrokerClient(broker)
        other = LocalBrokerClient(broker)
        producer.attach_producer("e")
        producer.publish("e", "k", b"p")
        status, tag, _, _ = worker.pull("e")
        assert status == PULL_OK
        # Cold estimate: only the deadline_max ceiling applies, so a
        # slow first chunk is never fenced spuriously.
        time.sleep(0.1)
        for _ in range(5):
            other.pull("e", timeout=0.01)
            time.sleep(0.02)
        assert not broker.is_fenced(worker.consumer)
        worker.ack("e", tag)
        assert broker.stats()["e"]["service_ewma"] is not None

    def test_deadline_off_never_fences(self):
        broker = Broker(delivery_deadline="off")
        broker.create_edge("e", capacity=4, producers=1)
        producer = LocalBrokerClient(broker)
        worker = LocalBrokerClient(broker)
        other = LocalBrokerClient(broker)
        producer.attach_producer("e")
        producer.publish("e", "k", b"p")
        assert worker.pull("e")[0] == PULL_OK
        time.sleep(0.1)
        for _ in range(5):
            other.pull("e", timeout=0.01)
            time.sleep(0.02)
        assert not broker.is_fenced(worker.consumer)

    def test_rejects_bad_policy_knobs(self):
        with pytest.raises(ValueError, match="positive"):
            Broker(delivery_deadline=0.0)
        with pytest.raises(ValueError, match="on_poison"):
            Broker(on_poison="retry")
        with pytest.raises(ValueError, match="negative"):
            Broker(max_redeliveries=-1)

    def test_backoff_parks_then_promotes_in_original_order(self):
        broker = Broker(delivery_deadline="off", backoff_base=0.2,
                        backoff_cap=0.2)
        broker.create_edge("e", capacity=8, producers=1)
        producer = LocalBrokerClient(broker)
        producer.attach_producer("e")
        producer.publish("e", "k0", b"p0")
        producer.publish("e", "k1", b"p1")

        dying = LocalBrokerClient(broker)
        assert dying.pull("e")[2] == "k0"
        assert dying.pull("e")[2] == "k1"
        dying.close()  # drop: strike + park both under backoff

        survivor = LocalBrokerClient(broker)
        assert survivor.pull("e")[0] == PULL_EMPTY  # parked, not visible
        assert broker.stats()["e"]["delayed"] == 2
        time.sleep(0.25)
        # Promotion restores the ORIGINAL order at the front of the edge.
        assert _pull_until(survivor, "e")[2] == "k0"
        assert survivor.pull("e")[2] == "k1"

    def test_idle_producer_is_fenced(self):
        broker = Broker(delivery_deadline=0.05)
        broker.create_edge("work", capacity=4, producers=1)
        broker.create_edge("out", capacity=4, producers=1)
        coordinator = LocalBrokerClient(broker)
        coordinator.attach_producer("work")
        coordinator.publish("work", "c0", b"p")
        coordinator.producer_done("work")

        worker = LocalBrokerClient(broker)
        worker.attach_producer("out")
        status, tag, _, _ = worker.pull("work")
        assert status == PULL_OK
        worker.ack("work", tag)
        # ...and now the worker freezes holding its "out" producer slot:
        # nothing unacked anywhere, so no delivery deadline covers it,
        # but it blocks the edge from ever closing.
        downstream = LocalBrokerClient(broker)
        assert _pull_until(downstream, "out", want=EDGE_CLOSED)
        assert broker.is_fenced(worker.consumer)

    def test_zero_pull_producer_is_exempt_from_idle_fence(self):
        broker = Broker(delivery_deadline=0.05)
        broker.create_edge("out", capacity=4, producers=1)
        coordinator = LocalBrokerClient(broker)
        coordinator.attach_producer("out")  # never pulls (publisher only)
        other = LocalBrokerClient(broker)
        deadline = time.monotonic() + 0.4
        while time.monotonic() < deadline:
            other.pull("out", timeout=0.01)
            time.sleep(0.02)
        assert not broker.is_fenced(coordinator.consumer)


# ----------------------------------------------------------- quarantine


class TestPoisonQuarantine:
    def test_quarantine_after_redelivery_budget(self):
        broker = Broker(delivery_deadline="off", max_redeliveries=1,
                        backoff_base=0.01, backoff_cap=0.01)
        captured = []
        broker.quarantine_listener = \
            lambda edge, record: captured.append((edge, record))
        broker.create_edge("e", capacity=4, producers=1)
        producer = LocalBrokerClient(broker)
        producer.attach_producer("e")
        producer.publish("e", "poison", b"bad")

        for _ in range(2):  # two strikes exhaust max_redeliveries=1
            victim = LocalBrokerClient(broker)
            if victim.pull("e")[0] != PULL_OK:
                _pull_until(victim, "e")
            victim.close()

        edge, record = captured[0]
        assert edge == "e"
        assert record["key"] == "poison"
        assert record["strikes"] == 2
        assert len(record["history"]) == 2
        assert broker.quarantined() == {"e": [record]}
        assert LocalBrokerClient(broker).quarantined_keys() == {"poison"}

        stats = broker.stats()["e"]
        assert stats["total_quarantined"] == 1
        assert stats["quarantined"] == ["poison"]
        # A resumed producer republishing the dead key is swallowed.
        assert producer.publish("e", "poison", b"bad") == PUBLISH_OK
        assert broker.stats()["e"]["pending"] == 0
        producer.producer_done("e")
        assert broker.wait_complete(timeout=2.0)

    def test_on_poison_fail_aborts_every_edge(self):
        broker = Broker(delivery_deadline="off", max_redeliveries=0,
                        on_poison="fail")
        broker.create_edge("e", capacity=4, producers=1)
        broker.create_edge("other", capacity=4, producers=1)
        producer = LocalBrokerClient(broker)
        producer.attach_producer("e")
        producer.publish("e", "poison", b"bad")
        victim = LocalBrokerClient(broker)
        assert victim.pull("e")[0] == PULL_OK
        victim.close()  # strike 1 > budget 0: immediate quarantine

        assert broker.poison_failure == ("e", "poison")
        bystander = LocalBrokerClient(broker)
        assert bystander.pull("other")[0] == EDGE_ABORTED
        assert broker.wait_complete(timeout=2.0)


# ------------------------------------------------------- live admission


class TestWorkerAdmission:
    def _broker_with_plan(self, text="A=align;B=sort,dupmark,varcall"):
        plan = PlacementPlan.parse(text)
        broker = Broker()
        broker.plan_doc = plan.to_doc()
        for spec in plan.edges():
            broker.create_edge(spec.name, capacity=4,
                               producers=spec.producers)
        return broker, plan

    def test_admit_grows_plan_and_producer_slot(self):
        broker, plan = self._broker_with_plan()
        client = LocalBrokerClient(broker)
        doc = client.admit("late", "A")
        grown = PlacementPlan.from_doc(doc)
        assert grown.placement_for("late").stages == ("align",)
        egress = plan.egress_edge("A")
        assert broker.stats()[egress]["producers_remaining"] == 2
        assert broker.live_replicas(("align",)) == ["late"]
        # The broker serves the grown plan to future workers too.
        assert broker.plan_doc == doc

    def test_admit_rejects_bad_requests(self):
        broker, plan = self._broker_with_plan()
        with pytest.raises(BrokerError):
            broker.admit_worker("late", "nobody")  # unknown template
        with pytest.raises(BrokerError):
            broker.admit_worker("late", "B")  # stateful, not replicable
        with pytest.raises(BrokerError):
            broker.admit_worker("A", "A")  # duplicate server name
        assert Broker().plan_doc is None
        with pytest.raises(BrokerError, match="no placement plan"):
            Broker().admit_worker("late", "A")

    def test_admit_refused_after_group_finished(self):
        broker, plan = self._broker_with_plan()
        egress = plan.egress_edge("A")
        broker.producer_done(egress)  # the only align replica finished
        with pytest.raises(BrokerError, match="closed"):
            broker.admit_worker("late", "A")

    def test_fenced_replica_leaves_live_set(self):
        broker, _ = self._broker_with_plan()
        client = LocalBrokerClient(broker)
        client.admit("late", "A")
        assert broker.live_replicas(("align",)) == ["late"]
        broker.fence_consumer(client.consumer)
        assert broker.live_replicas(("align",)) == []


# -------------------------------------------------------- backlog spill


@pytest.mark.skipif(not shm_plane.shm_available(),
                    reason="POSIX shared memory unavailable")
class TestBacklogSpill:
    def test_adoption_past_watermark_spills_to_disk(self, tmp_path):
        pool = shm_plane.BufferPool(
            slab_bytes=4096, max_bytes=1 << 20,
            spill_dir=str(tmp_path), spill_watermark=64,
        )
        try:
            data1 = bytes(range(48))
            data2 = bytes(reversed(range(48)))
            name1 = f"{pool.prefix}-t1"
            name2 = f"{pool.prefix}-t2"
            assert shm_plane.create_segment(name1, data1)
            assert shm_plane.create_segment(name2, data2)

            ref1 = pool.adopt_segment(name1, 0, len(data1))
            assert ref1 is not None
            assert pool.stats()["spilled_live"] == 0  # under watermark

            ref2 = pool.adopt_segment(name2, 0, len(data2))
            assert ref2 is not None
            assert ref2.offset == 0  # spill file holds exactly the span
            stats = pool.stats()
            assert stats["spilled_live"] == 1
            assert stats["total_spilled_segments"] == 1
            assert stats["total_spilled_bytes"] == len(data2)
            spill_files = list(tmp_path.glob(f"{pool.prefix}-spill-*"))
            assert len(spill_files) == 1

            # Spill-then-pull byte identity, via the copy path only:
            # the bytes no longer live in any attachable segment.
            assert pool.incref(ref2) is None
            assert pool.read_ref(ref2) == data2
            with pytest.warns(DeprecationWarning, match="view_ref"):
                assert pool.read_ref(ref1) == data1

            pool.release(ref2)
            assert not list(tmp_path.glob(f"{pool.prefix}-spill-*"))
            pool.release(ref1)
            assert pool.stats()["adopted_live"] == 0
        finally:
            pool.close()

    def test_tcp_spill_then_pull_byte_identity(self, tmp_path):
        """Every adopted payload spills (watermark 1) and is still
        delivered byte-identical through a real broker socket."""
        broker = Broker(delivery_deadline="off")
        broker.create_edge("e", capacity=8, producers=1)
        server = BrokerServer(
            broker, shm=True, shm_threshold=1,
            spill_dir=str(tmp_path), spill_watermark=1,
        ).start()
        if not server.shm_enabled:
            server.stop()
            pytest.skip("broker could not arm the shm handoff")
        payloads = {f"k{i}": os.urandom(2048) + bytes([i]) * 32
                    for i in range(3)}
        producer = consumer = None
        try:
            producer = TcpBrokerClient(server.host, server.port)
            consumer = TcpBrokerClient(server.host, server.port)
            producer.attach_producer("e")
            for key, payload in payloads.items():
                assert producer.publish("e", key, payload) == PUBLISH_OK
            pool_stats = server._pool.stats()
            assert pool_stats["total_spilled_segments"] == len(payloads)
            assert pool_stats["adopted_bytes"] == 0  # nothing kept in shm

            for _ in payloads:
                status, tag, key, payload = _pull_until(consumer, "e")
                assert payload == payloads[key]
                consumer.ack("e", tag)
            producer.producer_done("e")
            assert consumer.pull("e")[0] == EDGE_CLOSED
            # Acked spill files are gone; lifetime counters remain.
            assert server._pool.stats()["spilled_live"] == 0
        finally:
            if consumer is not None:
                consumer.close()
            if producer is not None:
                producer.close()
            server.stop()


# ------------------------------------------------------------ chaos hook


class TestChaosHook:
    @pytest.mark.parametrize("raw,expected", [
        ("", ("crash", 0.0)),
        ("crash", ("crash", 0.0)),
        ("hang", ("hang", 3600.0)),
        ("hang:2", ("hang", 2.0)),
        ("slow:250", ("slow", 0.25)),
        ("slow", ("slow", 0.1)),
        ("garbage:x", ("crash", 0.0)),
    ])
    def test_parse_chaos_modes(self, monkeypatch, raw, expected):
        from repro.core.ledger import _parse_chaos_mode

        monkeypatch.setenv(CHAOS_MODE_ENV, raw)
        assert _parse_chaos_mode() == expected

    def test_hang_fires_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "align:1")
        monkeypatch.setenv(CHAOS_MODE_ENV, "hang:0.3")
        ledger = RunLedger.create(tmp_path, run_id="hang")
        t0 = time.monotonic()
        ledger.chunk_done("align", "c0", "d0")
        assert time.monotonic() - t0 >= 0.3
        t1 = time.monotonic()
        ledger.chunk_done("align", "c1", "d1")
        assert time.monotonic() - t1 < 0.2  # one-shot
        ledger.close()

    def test_slow_fires_on_every_matching_chunk(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "align:1")
        monkeypatch.setenv(CHAOS_MODE_ENV, "slow:100")
        ledger = RunLedger.create(tmp_path, run_id="slow")
        for key in ("c0", "c1"):
            t0 = time.monotonic()
            ledger.chunk_done("align", key, "d")
            assert time.monotonic() - t0 >= 0.1
        ledger.close()

    def test_quarantine_record_replays(self, tmp_path):
        ledger = RunLedger.create(tmp_path, run_id="q")
        ledger.quarantine("work", {
            "key": "pg-5", "strikes": 3,
            "history": ["attempt 1: died", "attempt 2: died"],
        })
        ledger.close()
        state = RunLedger.replay(tmp_path / "q.jsonl")
        assert state.quarantined["work"][0]["key"] == "pg-5"
        assert state.quarantined["work"][0]["strikes"] == 3


# ----------------------------------------------------- placed end-to-end


class _HangingAligner:
    """Stalls hard on its first read (a SIGSTOPped-worker stand-in)."""

    def __init__(self, inner, sleep_s: float):
        self._inner = inner
        self._sleep = sleep_s
        self._fired = False

    def align_read(self, bases):
        if not self._fired:
            self._fired = True
            time.sleep(self._sleep)
        return self._inner.align_read(bases)


class _PoisonAligner:
    """Kills the worker on one specific read's bases (a poison chunk).

    The death is delayed a beat so the victim's sink thread drains
    (publishes + acks) the chunks it aligned BEFORE the poison one:
    the death then strikes exactly the poison chunk.  Without the
    delay, alignment outpaces the TCP publish of the neighbouring
    chunk, and that innocent — redelivered together with the poison
    chunk, in seq order, to the next victim — collects a strike at
    EVERY death and ends up quarantined alongside it."""

    def __init__(self, inner, poison_bases, death_delay: float = 0.5):
        self._inner = inner
        self._poison = poison_bases
        self._delay = death_delay

    def align_read(self, bases):
        if bases == self._poison:
            time.sleep(self._delay)
            raise WorkerKilled("simulated poison chunk")
        return self._inner.align_read(bases)


class _SlowAligner:
    """Delays every read (leaves the work edge a backlog to rebalance)."""

    def __init__(self, inner, delay: float):
        self._inner = inner
        self._delay = delay

    def align_read(self, bases):
        time.sleep(self._delay)
        return self._inner.align_read(bases)


@pytest.fixture()
def fresh_dataset(reads, reference):
    def factory(chunk_size: int = 100):
        return import_reads(
            reads, "pg", MemoryStore(), chunk_size=chunk_size,
            reference=reference.manifest_entry(),
        )
    return factory


@pytest.fixture(scope="module")
def degraded_single(reads, reference, snap_aligner):
    """Reference for DEGRADED runs: the single-Session run over the
    first five chunks only (the poison tests quarantine ``pg-5``)."""
    dataset = import_reads(
        reads[:500], "pg", MemoryStore(), chunk_size=100,
        reference=reference.manifest_entry(),
    )
    return run_pipeline(
        dataset,
        ("align", "sort", "dupmark", "varcall"),
        aligner=snap_aligner,
        reference=reference,
        sort_config=SORT_CONFIG,
        backend="serial",
    )


@pytest.fixture(scope="module")
def single_session_24(reads, reference, snap_aligner):
    """Single-Session reference over the SAME reads split into 24
    chunks (chunk_size=25).  Placed tests that need fine chunking to
    defeat prefetch hoarding (a replica's local pipeline eagerly
    claims ~7 chunk names) compare against this — sorted output is
    only byte-identical under identical import chunking."""
    dataset = import_reads(
        reads, "pg", MemoryStore(), chunk_size=25,
        reference=reference.manifest_entry(),
    )
    return run_pipeline(
        dataset,
        ("align", "sort", "dupmark", "varcall"),
        aligner=snap_aligner,
        reference=reference,
        sort_config=SORT_CONFIG,
        backend="serial",
    )


@pytest.fixture(scope="module")
def degraded_single_24(reads, reference, snap_aligner):
    """Degraded reference at chunk_size=25: everything but the final
    chunk (reads 575-599), which the combo test quarantines."""
    dataset = import_reads(
        reads[:575], "pg", MemoryStore(), chunk_size=25,
        reference=reference.manifest_entry(),
    )
    return run_pipeline(
        dataset,
        ("align", "sort", "dupmark", "varcall"),
        aligner=snap_aligner,
        reference=reference,
        sort_config=SORT_CONFIG,
        backend="serial",
    )


@pytest.fixture(scope="module")
def poison_bases(reads):
    """Bases of a read as close as possible to the END of the read
    set, unique across the whole set.  The position is load-bearing
    twice over:

    * It sits in the final chunk under every chunking these tests use
      (``pg-5`` at chunk_size=100, chunk 23 at chunk_size=25).  The
      broker issues and re-issues deliveries in seq order, so the
      highest-seq chunk is always the LAST name any worker pulls —
      a worker dying on it has already aligned-and-acked everything
      it claimed earlier, and the death strikes no innocent chunk.
    * Quarantining the final chunk leaves the ordinal hole at the
      end, so a fresh import of the surviving reads renumbers them
      identically and the degraded byte-identity comparison holds.
    * Being late WITHIN the chunk, dozens of reads align (and the
      previous chunk's in-flight publish drains) before it fires.
    """
    counts = Counter(r.bases for r in reads)
    for r in reversed(reads[575:600]):
        if counts[r.bases] == 1:
            return r.bases
    raise AssertionError("no unique read in the last chunk")


def vcf_bytes(variants, reference) -> bytes:
    buf = io.BytesIO()
    write_vcf(variants, buf, contigs=reference.manifest_entry())
    return buf.getvalue()


def assert_matches_single(placed, single, reference) -> None:
    assert verify_sorted(placed.sorted_dataset)
    assert placed.sorted_dataset.manifest.columns == \
        single.sorted_dataset.manifest.columns
    for column in single.sorted_dataset.columns:
        assert (placed.sorted_dataset.read_column(column)
                == single.sorted_dataset.read_column(column)), column
    for entry in single.sorted_dataset.manifest.chunks:
        for column in single.sorted_dataset.columns:
            key = entry.chunk_file(column)
            assert placed.sorted_dataset.store.get(key) == \
                single.sorted_dataset.store.get(key), key
    assert (placed.dupmark_stats.records,
            placed.dupmark_stats.duplicates_marked) == (
        single.dupmark_stats.records,
        single.dupmark_stats.duplicates_marked,
    )
    assert vcf_bytes(placed.variants, reference) == \
        vcf_bytes(single.variants, reference)


class TestSelfHealingPlaced:
    def test_hung_worker_fenced_and_run_completes(
        self, fresh_dataset, snap_aligner, reference, single_session_24
    ):
        """A worker that stalls mid-chunk is fenced at the delivery
        deadline, its chunks are reissued to the healthy replica, and
        its late (post-fence) publishes are rejected — output stays
        byte-identical, nothing lost, nothing doubled.

        24 chunks matter: each replica's local pipeline prefetches ~7
        chunk names, so with the default 6 chunks the healthy replica
        can hoard the whole edge before the stalled one claims any —
        and a worker that never pulled is never fenced."""
        plan = PlacementPlan.parse("hang=align;ok=align;"
                                   "B=sort,dupmark,varcall")

        def factory(server):
            if server == "hang":
                return _HangingAligner(snap_aligner, sleep_s=3.0)
            return snap_aligner

        placed = run_placed_pipeline(
            fresh_dataset(chunk_size=25),
            plan,
            aligner_factory=factory,
            reference=reference,
            align_config=SHALLOW_ALIGN,
            sort_config=SORT_CONFIG,
            backend="serial",
            delivery_deadline=1.0,
            session_timeout=120.0,
        )
        hang = placed.server("hang")
        ok = placed.server("ok")
        assert hang.killed  # fenced, surfaced exactly like a death
        assert not ok.killed
        stats = placed.broker_stats[WORK_EDGE]
        assert stats["total_expired"] >= 1
        assert stats["total_redelivered"] >= 1
        assert not placed.quarantined
        assert hang.chunks + ok.chunks == 24  # exactly once
        assert_matches_single(placed, single_session_24, reference)

    def test_poison_chunk_quarantined_run_completes_degraded(
        self, fresh_dataset, snap_aligner, reference, degraded_single,
        poison_bases, tmp_path,
    ):
        """A chunk that kills every worker that touches it is dead-
        lettered after its redelivery budget, journaled to the ledger,
        and the run completes byte-identical to a clean run over the
        surviving chunks."""
        dataset = fresh_dataset()
        poison_key = dataset.manifest.chunks[5].path
        plan = PlacementPlan.parse(
            "d1=align;d2=align;ok=align;B=sort,dupmark,varcall"
        )

        def factory(server):  # noqa: ARG001 - every replica is at risk
            return _PoisonAligner(snap_aligner, poison_bases)

        ledger = RunLedger.create(tmp_path, run_id="poisoned")
        placed = run_placed_pipeline(
            dataset,
            plan,
            aligner_factory=factory,
            reference=reference,
            align_config=SHALLOW_ALIGN,
            sort_config=SORT_CONFIG,
            backend="serial",
            max_redeliveries=1,
            session_timeout=120.0,
            ledger=ledger,
            # Slow redelivery well past innocent in-flight completion,
            # so only the poison chunk ever accumulates strikes.
            broker_ready=lambda broker, _srv: setattr(
                broker, "backoff_base", 0.5
            ),
        )
        ledger.close()

        assert sum(1 for s in placed.servers if s.killed) == 2
        [record] = placed.quarantined[WORK_EDGE]
        assert record["key"] == poison_key
        assert record["strikes"] == 2
        stats = placed.broker_stats[WORK_EDGE]
        assert stats["total_quarantined"] == 1
        assert stats["quarantined"] == [poison_key]
        # Survivors completed exactly the five innocent chunks.
        assert sum(s.chunks for s in placed.servers
                   if "align" in s.stages) == 5
        assert_matches_single(placed, degraded_single, reference)

        # The quarantine is durable: the journal replays the record.
        state = RunLedger.replay(tmp_path / "poisoned.jsonl")
        assert state.status == "complete"
        [journaled] = state.quarantined[WORK_EDGE]
        assert journaled["key"] == poison_key
        assert journaled["strikes"] == 2
        assert len(journaled["history"]) == 2

    def test_mid_run_admitted_worker_pulls_real_work(
        self, fresh_dataset, snap_aligner, reference
    ):
        """A worker that joins a RUNNING placed pipeline over TCP is
        admitted as an align replica, drains real deliveries, and the
        combined output stays byte-identical.

        Finer chunking (20 chunks) matters: a planned replica's local
        pipeline eagerly prefetches ~7 chunk names into its internal
        queues, so with the default 6 chunks a newcomer would find the
        work edge already drained no matter how slow the incumbent is.
        """
        dataset = fresh_dataset(chunk_size=30)
        assert dataset.manifest.num_chunks == 20
        single = run_pipeline(
            fresh_dataset(chunk_size=30),
            ("align", "sort", "dupmark", "varcall"),
            aligner=snap_aligner,
            reference=reference,
            sort_config=SORT_CONFIG,
            backend="serial",
        )
        joined: dict = {}
        threads: list = []

        def on_ready(broker, server_tcp):
            def join():
                try:
                    joined["outcome"] = join_placed_worker(
                        dataset, "late", "A",
                        host=server_tcp.host, port=server_tcp.port,
                        aligner=snap_aligner, reference=reference,
                        align_config=SHALLOW_ALIGN, backend="serial",
                    )
                except BaseException as exc:  # surfaced by the test body
                    joined["error"] = exc
            t = threading.Thread(target=join, name="late-joiner")
            t.start()
            threads.append(t)

        placed = run_placed_pipeline(
            dataset,
            PlacementPlan.parse("A=align;B=sort,dupmark,varcall"),
            # The planned replica is slow, so the newcomer has plenty of
            # outstanding chunk names to steal from the work edge.
            aligner_factory=lambda server: _SlowAligner(
                snap_aligner, 0.01
            ),
            reference=reference,
            align_config=SHALLOW_ALIGN,
            sort_config=SORT_CONFIG,
            backend="serial",
            transport="tcp",
            broker_ready=on_ready,
            session_timeout=120.0,
        )
        for t in threads:
            t.join(timeout=60.0)
        assert "error" not in joined, joined.get("error")
        late = joined["outcome"]
        assert not late.killed
        assert late.stages == ("align",)
        assert late.chunks >= 1
        pulls = placed.broker_stats[WORK_EDGE]["pulls_by_consumer"]
        assert pulls[str(late.consumer)] > 0
        assert late.chunks + placed.server("A").chunks == 20
        assert_matches_single(placed, single, reference)

    def test_tcp_run_heals_stall_and_poison_together(
        self, fresh_dataset, snap_aligner, reference, degraded_single_24,
        poison_bases, tmp_path,
    ):
        """The acceptance run: a placed TCP pipeline with a stalled
        worker AND a poison chunk AND a tiny spill watermark completes
        byte-identical to a clean run minus the quarantined chunk.

        Three things keep the quarantine outcome deterministic despite
        the reissue churn.  24 chunks: the stalled worker always claims
        part of the edge (one healthy prefetcher can't hoard 24 names),
        so it is always fenced.  Poison in the highest-seq chunk: it is
        the LAST delivery both initially and on every seq-ordered
        reissue, so (with ``death_delay`` letting the sink drain) each
        death strikes the poison chunk alone.  Redelivery backoff ==
        the 2s deadline: the first reissue of ANYTHING lands after the
        hung worker is fenced, so no chunk can pick up a death-strike
        and then ride into the hung worker's open prefetch slots for a
        second, quarantining strike at the fence."""
        dataset = fresh_dataset(chunk_size=25)
        poison_key = dataset.manifest.chunks[23].path
        plan = PlacementPlan.parse(
            "hang=align;d1=align;d2=align;ok=align;"
            "B=sort,dupmark,varcall"
        )

        def factory(server):
            if server == "hang":
                return _HangingAligner(snap_aligner, sleep_s=5.0)
            return _PoisonAligner(snap_aligner, poison_bases)

        placed = run_placed_pipeline(
            dataset,
            plan,
            aligner_factory=factory,
            reference=reference,
            align_config=SHALLOW_ALIGN,
            sort_config=SORT_CONFIG,
            backend="serial",
            transport="tcp",
            delivery_deadline=2.0,
            max_redeliveries=1,
            spill_dir=str(tmp_path),
            spill_watermark=1,
            session_timeout=120.0,
            # Backoff == the delivery deadline: every reissue happens
            # AFTER the hung worker is fenced and can no longer pull.
            broker_ready=lambda broker, _srv: setattr(
                broker, "backoff_base", 2.0
            ),
        )
        hang = placed.server("hang")
        assert hang.killed  # fenced at the deadline
        stats = placed.broker_stats[WORK_EDGE]
        assert stats["total_expired"] >= 1
        assert stats["total_redelivered"] >= 1
        records = placed.quarantined[WORK_EDGE]
        assert [r["key"] for r in records] == [poison_key], records
        [record] = records
        # The 23 innocent chunks completed exactly once despite the
        # fence-and-death reissue churn.
        assert sum(s.chunks for s in placed.servers
                   if "align" in s.stages) == 23
        assert_matches_single(placed, degraded_single_24, reference)


# ------------------------------------------------- CLI subprocess (SIGSTOP)


SRC_DIR = Path(__file__).resolve().parent.parent / "src"


def _run_cli(args, env=None, timeout=180):
    full_env = os.environ.copy()
    full_env["PYTHONPATH"] = (
        str(SRC_DIR) + os.pathsep + full_env.get("PYTHONPATH", "")
    )
    full_env.pop(CRASH_ENV, None)
    full_env.pop(CHAOS_MODE_ENV, None)
    if env:
        full_env.update(env)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, env=full_env, timeout=timeout,
    )


def _popen_cli(args):
    full_env = os.environ.copy()
    full_env["PYTHONPATH"] = (
        str(SRC_DIR) + os.pathsep + full_env.get("PYTHONPATH", "")
    )
    full_env.pop(CRASH_ENV, None)
    full_env.pop(CHAOS_MODE_ENV, None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=full_env,
    )


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _wait_port(port: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port),
                                     timeout=0.2).close()
            return
        except OSError:
            time.sleep(0.05)
    raise AssertionError(f"broker never listened on {port}")


def _tree_bytes(root: Path) -> "dict[str, bytes]":
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*")) if p.is_file()
    }


class TestStoppedWorkerCli:
    def test_sigstopped_worker_fenced_and_run_completes(
        self, tmp_path_factory
    ):
        """The real thing: SIGSTOP a live ``persona cluster worker``
        subprocess mid-run.  The broker fences it at the delivery
        deadline, a late-started replica drains its chunks, the run
        completes cleanly — byte-identical to the single-process
        ``persona pipeline`` run — and the thawed worker exits reporting
        it was fenced."""
        work = tmp_path_factory.mktemp("sigstop")
        ref, reads, _ = synthetic_dataset(
            genome_length=30_000, coverage=3.0, seed=777,
            duplicate_fraction=0.1,
        )
        write_fasta(ref, work / "ref.fa")
        for name in ("ds-ref", "ds-run"):
            store = DirectoryStore(work / name)
            ds = import_reads(reads, "smoke", store, chunk_size=60)
            ds.save_manifest(work / name)
        num_chunks = ds.num_chunks
        assert num_chunks >= 10  # enough backlog to stop w1 mid-run

        reference = _run_cli([
            "pipeline", str(work / "ds-ref"), str(work / "out-ref"),
            "--reference", str(work / "ref.fa"),
            "--stages", "align,sort,dupmark,varcall",
            "--vcf", str(work / "ref.vcf"), "--backend", "serial",
        ])
        assert reference.returncode == 0, reference.stderr

        port = _free_port()
        plan = "w1=align;w2=align;B=sort,dupmark,varcall"
        broker = _popen_cli([
            "cluster", "broker", str(work / "ds-run"), "--plan", plan,
            "--host", "127.0.0.1", "--port", str(port),
            "--delivery-deadline", "2", "--timeout", "120",
            "--spill-dir", str(work / "spill"), "--spill-watermark", "1",
        ])
        w1 = w2 = b = None
        try:
            _wait_port(port)
            worker_args = [
                "cluster", "worker", str(work / "ds-run"),
                "--connect", f"127.0.0.1:{port}",
                "--reference", str(work / "ref.fa"),
                "--backend", "serial", "--timeout", "120",
            ]
            # Staggered start: w1 runs ALONE until its first aligned
            # chunk lands, so freezing it provably strands pulled work.
            w1 = _popen_cli(worker_args + ["--server", "w1"])
            deadline = time.monotonic() + 60.0
            while not list((work / "ds-run").glob("*.results")):
                assert time.monotonic() < deadline, \
                    "w1 never aligned a chunk"
                assert w1.poll() is None, w1.communicate()[1]
                time.sleep(0.002)
            w1.send_signal(signal.SIGSTOP)

            w2 = _popen_cli(worker_args + ["--server", "w2"])
            b = _popen_cli(worker_args + [
                "--server", "B", "--output-dir", str(work / "out-run"),
                "--vcf", str(work / "run.vcf"),
            ])
            w2_out, w2_err = w2.communicate(timeout=150)
            b_out, b_err = b.communicate(timeout=150)
            assert w2.returncode == 0, w2_err
            assert b.returncode == 0, b_err

            # Thaw the fenced worker: its next broker op is rejected
            # and it must exit loudly without corrupting the run.
            w1.send_signal(signal.SIGCONT)
            w1_out, w1_err = w1.communicate(timeout=60)
            assert w1.returncode == 1, (w1_out, w1_err)
            assert "fenced" in w1_err

            broker_out, broker_err = broker.communicate(timeout=120)
            assert broker.returncode == 0, broker_err
            assert "run complete" in broker_out
            assert "DEGRADED" not in broker_out
            redelivered = [
                int(m) for m in re.findall(
                    r"redelivered\s+(\d+)", broker_out
                )
            ]
            assert sum(redelivered) >= 1, broker_out
        finally:
            for proc in (w1, w2, b, broker):
                if proc is not None and proc.poll() is None:
                    try:
                        proc.send_signal(signal.SIGCONT)
                    except OSError:
                        pass
                    proc.kill()
                    proc.wait()

        assert _tree_bytes(work / "out-ref") == _tree_bytes(work / "out-run")
        assert (work / "ref.vcf").read_bytes() == \
            (work / "run.vcf").read_bytes()
