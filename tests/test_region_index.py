"""Tests for the genomic region index (§2.1's 'indexing' step)."""

import pytest

from repro.core.region_index import ChunkSpan, RegionIndex
from repro.core.sort import SortConfig, sort_dataset
from repro.storage.base import MemoryStore


@pytest.fixture()
def sorted_dataset(aligned_dataset):
    return sort_dataset(
        aligned_dataset, MemoryStore(), SortConfig(chunks_per_superchunk=3)
    )


class TestBuild:
    def test_requires_sorted(self, aligned_dataset):
        with pytest.raises(ValueError, match="sorted"):
            RegionIndex.build(aligned_dataset)

    def test_spans_ordered_and_consistent(self, sorted_dataset):
        index = RegionIndex.build(sorted_dataset)
        assert index.spans
        starts = [(s.first_contig, s.first_position) for s in index.spans]
        assert starts == sorted(starts)
        for span in index.spans:
            assert (span.first_contig, span.first_position) <= (
                span.last_contig, span.last_end
            )


class TestQueries:
    def test_fetch_matches_full_scan(self, sorted_dataset, reference):
        index = RegionIndex.build(sorted_dataset)
        contig, start, end = 0, 2_000, 6_000
        fetched = index.fetch_region(
            sorted_dataset, contig, start, end, columns=("results",)
        )
        # Oracle: brute-force scan of every record.
        from repro.align.result import cigar_reference_span

        expected = [
            r
            for r in sorted_dataset.read_column("results")
            if r.is_aligned
            and r.contig_index == contig
            and r.position < end
            and r.position + max(1, cigar_reference_span(r.cigar)) > start
        ]
        assert [row[0] for row in fetched] == expected
        assert len(expected) > 0

    def test_touches_only_overlapping_chunks(self, sorted_dataset):
        index = RegionIndex.build(sorted_dataset)
        store = sorted_dataset.store
        gets = []
        original_get = store.get

        def spy_get(key):
            gets.append(key)
            return original_get(key)

        store.get = spy_get
        overlapping = index.chunks_for_region(0, 0, 500)
        index.fetch_region(sorted_dataset, 0, 0, 500)
        store.get = original_get
        assert 0 < len(overlapping) < sorted_dataset.num_chunks
        touched_chunks = {key.rsplit(".", 1)[0] for key in gets}
        assert len(touched_chunks) == len(overlapping)

    def test_multi_column_fetch(self, sorted_dataset):
        index = RegionIndex.build(sorted_dataset)
        rows = index.fetch_region(
            sorted_dataset, 0, 1_000, 4_000,
            columns=("metadata", "bases", "results"),
        )
        assert rows
        for metadata, bases, result in rows:
            assert isinstance(metadata, bytes)
            assert isinstance(bases, bytes)
            assert result.contig_index == 0

    def test_empty_region_rejected(self, sorted_dataset):
        index = RegionIndex.build(sorted_dataset)
        with pytest.raises(ValueError):
            index.chunks_for_region(0, 10, 10)

    def test_region_beyond_data_is_empty(self, sorted_dataset):
        index = RegionIndex.build(sorted_dataset)
        assert index.chunks_for_region(5, 0, 100) == []


class TestPersistence:
    def test_json_roundtrip(self, sorted_dataset):
        index = RegionIndex.build(sorted_dataset)
        back = RegionIndex.from_json(index.to_json())
        assert back.spans == index.spans
        assert back.chunks_for_region(0, 0, 10_000) == (
            index.chunks_for_region(0, 0, 10_000)
        )


class TestChunkSpan:
    def test_overlap_logic(self):
        span = ChunkSpan(0, first_contig=0, first_position=100,
                         last_contig=0, last_end=200)
        assert span.overlaps(0, 150, 160)
        assert span.overlaps(0, 0, 101)
        assert span.overlaps(0, 199, 300)
        assert not span.overlaps(0, 200, 300)
        assert not span.overlaps(0, 0, 100)
        assert not span.overlaps(1, 100, 200)
