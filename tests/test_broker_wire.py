"""Zero-copy broker plane tests (scatter/gather framing + shm handoff).

The acceptance properties of the zero-copy wire refactor:

* the scatter/gather TCP frame round-trips every payload shape —
  zero-length blobs, 1-byte segments, >64 KiB columns — and a torn or
  hostile frame raises :class:`WireError` without wedging the server;
* the same-host shm handoff only arms after the boot-token handshake
  proves the client genuinely shares ``/dev/shm`` with the broker, and
  degrades to the byte-identical socket copy path everywhere else;
* pool leases die with their delivery: acked, redelivered after a
  SIGKILLed consumer, or swept at ``server.stop()`` — never orphaned;
* a placed TCP run with shm handoffs is byte-identical to the copy
  path and to the single-``Session`` run, killed workers included;
* on ``--resume``, a multi-group plan whose leading group is pure
  align pre-acks journaled chunks AND re-injects their work items so
  downstream stages still see the full chunk set.
"""

from __future__ import annotations

import io
import multiprocessing
import os
import signal
import socket
import time

import pytest

from repro.cluster.broker import (
    _FRAME,
    _MAX_HEAD_BYTES,
    _MAX_SEGMENT_BYTES,
    _MAX_SEGMENTS,
    _SEGLEN,
    Broker,
    BrokerError,
    BrokerServer,
    TcpBrokerClient,
    _recv_frame,
    _send_frame,
)
from repro.cluster.multiserver import run_placed_pipeline
from repro.cluster.placement import WORK_EDGE, PlacementPlan
from repro.cluster.wire import WireError
from repro.core.ledger import RunLedger
from repro.core.pipelines import run_pipeline
from repro.core.sort import SortConfig, verify_sorted
from repro.dataflow import shm
from repro.dataflow.queues import PUBLISH_OK, PULL_OK
from repro.formats.converters import import_reads
from repro.formats.vcf import write_vcf
from repro.storage.base import MemoryStore

SORT_CONFIG = SortConfig(chunks_per_superchunk=2)

needs_shm = pytest.mark.skipif(
    not shm.shm_available(), reason="POSIX shared memory unavailable"
)


def _drain_pull(client, edge, deadline=10.0):
    """Poll a transport-level pull until a delivery (or time out)."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        status, tag, key, payload = client.pull(edge, timeout=0.2)
        if status == PULL_OK:
            return tag, key, payload
    raise TimeoutError(f"no delivery on {edge!r} within {deadline}s")


def _wait_for(predicate, deadline=10.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.02)
    return False


# --------------------------------------------------- scatter/gather frame


class TestScatterGatherFraming:
    """The raw wire format, over a socketpair — no broker involved."""

    def _round_trip(self, header, segments):
        a, b = socket.socketpair()
        try:
            sent = _send_frame(a, header, segments)
            back, body, wire = _recv_frame(b)
        finally:
            a.close()
            b.close()
        assert back == header
        assert [bytes(s) for s in body] == [bytes(s) for s in segments]
        assert wire == sent
        return body

    def test_no_segment_frame(self):
        self._round_trip({"op": "ack", "tag": 7}, [])

    def test_zero_length_and_tiny_segments(self):
        self._round_trip({"op": "publish", "multi": True},
                         [b"", b"x", b"", b"yz"])

    def test_large_column_segments(self):
        rng_bytes = bytes(range(256)) * 300  # 76800 B, > 64 KiB threshold
        self._round_trip({"op": "publish", "multi": True},
                         [rng_bytes, b"", rng_bytes[: 1 << 16]])

    def test_many_segment_scatter(self):
        import random

        rng = random.Random(1234)
        segments = [
            bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 200)))
            for _ in range(64)
        ]
        self._round_trip({"multi": True, "n": 64}, segments)

    def test_clean_close_at_frame_start_is_connection_error(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(ConnectionError):
                _recv_frame(b)
        finally:
            b.close()

    def test_truncated_mid_frame_is_wire_error(self):
        a, b = socket.socketpair()
        head = b'{"op": "publish"}'
        # Frame promises one 100-byte segment but the sender dies after
        # the header: torn mid-frame, not a clean close.
        a.sendall(_FRAME.pack(len(head), 1) + head + _SEGLEN.pack(100))
        a.close()
        try:
            with pytest.raises(WireError, match="truncated"):
                _recv_frame(b)
        finally:
            b.close()

    def test_oversized_header_rejected(self):
        a, b = socket.socketpair()
        a.sendall(_FRAME.pack(_MAX_HEAD_BYTES + 1, 0))
        a.close()
        try:
            with pytest.raises(WireError, match="header"):
                _recv_frame(b)
        finally:
            b.close()

    def test_oversized_segment_count_rejected(self):
        a, b = socket.socketpair()
        a.sendall(_FRAME.pack(2, _MAX_SEGMENTS + 1) + b"{}")
        a.close()
        try:
            with pytest.raises(WireError, match="segment"):
                _recv_frame(b)
        finally:
            b.close()

    def test_oversized_segment_length_rejected(self):
        a, b = socket.socketpair()
        head = b"{}"
        a.sendall(_FRAME.pack(len(head), 1) + head
                  + _SEGLEN.pack(_MAX_SEGMENT_BYTES + 1))
        a.close()
        try:
            with pytest.raises(WireError, match="segment"):
                _recv_frame(b)
        finally:
            b.close()

    def test_non_json_header_rejected(self):
        a, b = socket.socketpair()
        head = b"\xffnot json at all"
        a.sendall(_FRAME.pack(len(head), 0) + head)
        a.close()
        try:
            with pytest.raises(WireError, match="header"):
                _recv_frame(b)
        finally:
            b.close()

    def test_garbage_client_does_not_wedge_healthy_clients(self):
        """A hostile/broken peer costs only its own connection."""
        broker = Broker()
        broker.create_edge("e", capacity=4, producers=1)
        server = BrokerServer(broker, shm=False).start()
        try:
            raw = socket.create_connection(server.address)
            raw.sendall(b"\xff" * 64)
            raw.close()
            producer = TcpBrokerClient(*server.address)
            consumer = TcpBrokerClient(*server.address)
            producer.attach_producer("e")
            assert producer.publish("e", "k", b"payload",
                                    timeout=5.0) == PUBLISH_OK
            _tag, key, payload = _drain_pull(consumer, "e")
            assert (key, bytes(payload)) == ("k", b"payload")
            producer.close()
            consumer.close()
        finally:
            server.stop()


# ----------------------------------------------- payload shapes + stats


class TestPayloadRoundTrip:
    def test_multi_segment_payload_and_wire_accounting(self):
        """Segment lists survive the copy path byte-for-byte, and the
        per-edge ledger accounts every byte as copied, none as shm."""
        broker = Broker()
        broker.create_edge("e", capacity=8, producers=1)
        server = BrokerServer(broker, shm=False).start()
        assert not server.shm_enabled
        try:
            producer = TcpBrokerClient(*server.address)
            consumer = TcpBrokerClient(*server.address)
            assert not producer.shm_active
            producer.attach_producer("e")
            payloads = {
                "empty": b"",
                "blob": b"single-blob",
                "columns": [b"", b"a", bytes(range(256)) * 400, b"qual"],
            }
            for key, payload in payloads.items():
                assert producer.publish("e", key, payload,
                                        timeout=5.0) == PUBLISH_OK
            got = {}
            for _ in payloads:
                tag, key, payload = _drain_pull(consumer, "e")
                got[key] = payload
                consumer.ack("e", tag)
            assert bytes(got["empty"]) == b""
            assert bytes(got["blob"]) == b"single-blob"
            assert [bytes(s) for s in got["columns"]] == \
                [bytes(s) for s in payloads["columns"]]

            logical = sum(
                sum(len(s) for s in p) if isinstance(p, list) else len(p)
                for p in payloads.values()
            )
            stat = consumer.stats()["e"]
            assert stat["payload_bytes"] == logical
            # Both directions crossed the socket: framing overhead makes
            # wire bytes strictly larger than the logical payload.
            assert stat["wire_bytes"] > logical
            assert stat["shm_handoffs"] == 0
            assert stat["shm_bytes"] == 0
            # 0 + 1 + 4 segments (an empty blob normalizes to no
            # segments), copied inline in each direction.
            assert stat["copied_segments"] == 10
            assert stat["copied_bytes"] == 2 * logical
            producer.close()
            consumer.close()
        finally:
            server.stop()


# ------------------------------------------------------- shm handshake


@needs_shm
class TestShmHandshake:
    def test_same_host_client_auto_verifies(self):
        broker = Broker()
        broker.create_edge("e", capacity=4, producers=1)
        server = BrokerServer(broker, shm=True).start()
        try:
            assert server.shm_enabled
            client = TcpBrokerClient(*server.address)
            assert client.shm_active
            client.close()
        finally:
            server.stop()

    def test_shm_false_forces_copy_path(self):
        broker = Broker()
        broker.create_edge("e", capacity=4, producers=1)
        server = BrokerServer(broker, shm=True, shm_threshold=64).start()
        try:
            producer = TcpBrokerClient(*server.address, shm=False)
            consumer = TcpBrokerClient(*server.address, shm=False)
            assert not producer.shm_active
            producer.attach_producer("e")
            big = bytes(range(256)) * 16  # 4 KiB, over the threshold
            assert producer.publish("e", "k", [big, b"x"],
                                    timeout=5.0) == PUBLISH_OK
            tag, _key, payload = _drain_pull(consumer, "e")
            consumer.ack("e", tag)
            assert [bytes(s) for s in payload] == [big, b"x"]
            assert consumer.stats()["e"]["shm_handoffs"] == 0
            producer.close()
            consumer.close()
        finally:
            server.stop()

    def test_fake_remote_host_degrades_to_copy(self):
        """A peer that cannot read the probe segment (i.e. a different
        host) must never be handed descriptors — and still gets the
        payload, byte-identical, over the socket."""
        broker = Broker()
        broker.create_edge("e", capacity=4, producers=1)
        server = BrokerServer(broker, shm=True, shm_threshold=64).start()
        try:
            with pytest.MonkeyPatch.context() as mp:
                def unreachable(name, offset, length, cache=False):
                    raise OSError("no such segment on this host")

                mp.setattr(shm, "read_segment", unreachable)
                remote = TcpBrokerClient(*server.address)
            assert not remote.shm_active
            remote.attach_producer("e")
            big = bytes(range(256)) * 16
            assert remote.publish("e", "k", big, timeout=5.0) == PUBLISH_OK
            with pytest.MonkeyPatch.context() as mp:
                def unreachable(name, offset, length, cache=False):
                    raise OSError("no such segment on this host")

                mp.setattr(shm, "read_segment", unreachable)
                remote_consumer = TcpBrokerClient(*server.address)
            assert not remote_consumer.shm_active
            tag, _key, payload = _drain_pull(remote_consumer, "e")
            remote_consumer.ack("e", tag)
            assert bytes(payload) == big
            assert remote_consumer.stats()["e"]["shm_handoffs"] == 0
            remote.close()
            remote_consumer.close()
        finally:
            server.stop()

    def test_wrong_token_refused(self):
        broker = Broker()
        broker.create_edge("e", capacity=4, producers=1)
        server = BrokerServer(broker, shm=True).start()
        try:
            client = TcpBrokerClient(*server.address, shm=False)
            reply = client._request(
                {"op": "shm_verify", "token": "00" * 16}
            )[0]
            assert reply.get("shm") is False
            client.close()
        finally:
            server.stop()

    def test_unverified_shm_publish_rejected(self):
        """Descriptors from a client that never passed the handshake are
        a protocol violation, not a silent read."""
        broker = Broker()
        broker.create_edge("e", capacity=4, producers=1)
        server = BrokerServer(broker, shm=True).start()
        try:
            client = TcpBrokerClient(*server.address, shm=False)
            with pytest.raises(BrokerError, match="unverified"):
                client._request(
                    {"op": "publish", "edge": "e", "key": "k",
                     "multi": False, "timeout": 1.0,
                     "shm": [{"seg": f"{server._pool.prefix}-c9-o0",
                              "len": 3}]},
                )
            client.close()
        finally:
            server.stop()

    def test_segment_outside_broker_namespace_rejected(self):
        """Even a verified client may only name segments under the
        broker's own pool prefix — no arbitrary /dev/shm reads."""
        broker = Broker()
        broker.create_edge("e", capacity=4, producers=1)
        server = BrokerServer(broker, shm=True).start()
        try:
            client = TcpBrokerClient(*server.address)
            assert client.shm_active
            with pytest.raises(BrokerError, match="namespace"):
                client._request(
                    {"op": "publish", "edge": "e", "key": "k",
                     "multi": False, "timeout": 1.0,
                     "shm": [{"seg": "unrelated-segment", "len": 3}]},
                )
            client.close()
        finally:
            server.stop()


# --------------------------------------------- shm delivery + leases


@needs_shm
class TestShmHandoffDelivery:
    def _server(self, threshold=64):
        broker = Broker()
        broker.create_edge("e", capacity=8, producers=1)
        return BrokerServer(broker, shm=True, shm_threshold=threshold
                            ).start()

    def test_large_segments_cross_via_shm_byte_identical(self):
        server = self._server()
        try:
            producer = TcpBrokerClient(*server.address)
            consumer = TcpBrokerClient(*server.address)
            assert producer.shm_active and consumer.shm_active
            producer.attach_producer("e")
            big_a = bytes(range(256)) * 300   # 76.8 KB column
            big_b = os.urandom(4096)
            payload = [big_a, b"tiny", big_b]
            assert producer.publish("e", "k", payload,
                                    timeout=5.0) == PUBLISH_OK
            tag, key, got = _drain_pull(consumer, "e")
            consumer.ack("e", tag)
            assert key == "k"
            assert [bytes(s) for s in got] == [big_a, b"tiny", big_b]
            stat = consumer.stats()["e"]
            # Two big segments in each direction crossed as descriptors;
            # only the tiny one (and frame heads) used the socket.
            assert stat["shm_handoffs"] == 4
            assert stat["shm_bytes"] == 2 * (len(big_a) + len(big_b))
            assert stat["wire_bytes"] < len(big_a)
            producer.close()
            consumer.close()
        finally:
            server.stop()
        assert shm.list_segments(server._pool.prefix) == []

    def test_lease_released_on_ack(self):
        server = self._server()
        try:
            producer = TcpBrokerClient(*server.address)
            consumer = TcpBrokerClient(*server.address)
            producer.attach_producer("e")
            assert producer.publish("e", "k", os.urandom(8192),
                                    timeout=5.0) == PUBLISH_OK
            tag, _key, _payload = _drain_pull(consumer, "e")
            # Two leases ride the un-acked delivery: the adopted storage
            # lease (the publisher's segment, now pool-owned) plus the
            # consumer's handoff lease from the pull.
            assert server._pool.live_leases == 2
            consumer.ack("e", tag)
            # The ack reply is sent before the deferred wire record, so
            # observe the release through a follow-up request.
            consumer.stats()
            assert server._pool.live_leases == 0
            producer.close()
            consumer.close()
        finally:
            server.stop()

    def test_sigkilled_consumer_leases_reclaimed_and_redelivered(self):
        """A consumer SIGKILLed mid-delivery (pulled, never acked) must
        not orphan its pool leases: the dead connection releases them
        and the delivery goes to a surviving consumer."""
        server = self._server()
        try:
            producer = TcpBrokerClient(*server.address)
            producer.attach_producer("e")
            blob = os.urandom(16384)
            assert producer.publish("e", "k", blob,
                                    timeout=5.0) == PUBLISH_OK

            ctx = multiprocessing.get_context("fork")
            child = ctx.Process(
                target=_pull_and_die, args=(server.host, server.port, "e")
            )
            child.start()
            child.join(15.0)
            assert child.exitcode == -signal.SIGKILL

            survivor = TcpBrokerClient(*server.address)
            tag, key, payload = _drain_pull(survivor, "e")
            assert (key, bytes(payload)) == ("k", blob)
            survivor.ack("e", tag)
            survivor.stats()  # flush past the deferred record
            assert _wait_for(lambda: server._pool.live_leases == 0)
            assert server.broker.stats()["e"]["total_redelivered"] == 1
            producer.close()
            survivor.close()
        finally:
            server.stop()
        assert shm.list_segments(server._pool.prefix) == []

    def test_stop_sweeps_straggler_publish_segments(self):
        """A client that died between creating its one-shot publish
        segment and unlinking it leaves debris under the pool prefix;
        ``server.stop()`` sweeps the whole namespace."""
        server = self._server()
        straggler = f"{server._pool.prefix}-c99-o0"
        assert shm.create_segment(straggler, b"orphaned bytes")
        server.stop()
        assert shm.list_segments(server._pool.prefix) == []


# ------------------------------------------------- placed-run identity


def _pull_and_die(host, port, edge):  # pragma: no cover - runs in child
    client = TcpBrokerClient(host, port)
    status, _tag, _key, _payload = client.pull(edge, timeout=10.0)
    assert status == PULL_OK
    os.kill(os.getpid(), signal.SIGKILL)


@pytest.fixture()
def fresh_dataset(reads, reference):
    def factory():
        return import_reads(
            reads, "pg", MemoryStore(), chunk_size=100,
            reference=reference.manifest_entry(),
        )
    return factory


@pytest.fixture(scope="module")
def single_session(reads, reference, snap_aligner):
    dataset = import_reads(
        reads, "pg", MemoryStore(), chunk_size=100,
        reference=reference.manifest_entry(),
    )
    return run_pipeline(
        dataset,
        ("align", "sort", "dupmark", "varcall"),
        aligner=snap_aligner,
        reference=reference,
        sort_config=SORT_CONFIG,
        backend="serial",
    )


def _vcf_bytes(variants, reference) -> bytes:
    buf = io.BytesIO()
    write_vcf(variants, buf, contigs=reference.manifest_entry())
    return buf.getvalue()


def assert_matches_single(placed, single, reference) -> None:
    assert verify_sorted(placed.sorted_dataset)
    for column in single.sorted_dataset.columns:
        assert (placed.sorted_dataset.read_column(column)
                == single.sorted_dataset.read_column(column)), column
    assert (placed.dupmark_stats.records,
            placed.dupmark_stats.duplicates_marked) == (
        single.dupmark_stats.records,
        single.dupmark_stats.duplicates_marked,
    )
    assert _vcf_bytes(placed.variants, reference) == \
        _vcf_bytes(single.variants, reference)


def _small_threshold_server(instances, threshold=512):
    """A BrokerServer subclass whose pool hands off tiny test chunks."""

    class _Server(BrokerServer):
        def __init__(self, broker, host="127.0.0.1", port=0, shm=None,
                     **kwargs):
            kwargs.setdefault("shm_threshold", threshold)
            super().__init__(broker, host=host, port=port, shm=shm,
                             **kwargs)
            instances.append(self)

    return _Server


class _DyingAligner:
    """Raises WorkerKilled after a fixed number of reads."""

    def __init__(self, inner, survive_reads: int):
        self._inner = inner
        self.remaining = survive_reads

    def align_read(self, bases):
        if self.remaining <= 0:
            from repro.cluster.multiserver import WorkerKilled

            raise WorkerKilled("simulated worker death")
        self.remaining -= 1
        return self._inner.align_read(bases)


@needs_shm
class TestPlacedShmEquivalence:
    def test_shm_run_byte_identical_to_copy_run(
        self, fresh_dataset, snap_aligner, reference, single_session,
        monkeypatch,
    ):
        """Same placed TCP run, shm on vs forced off: both byte-identical
        to the single-session reference; only the shm run hands off."""
        servers: list = []
        monkeypatch.setattr(
            "repro.cluster.multiserver.BrokerServer",
            _small_threshold_server(servers),
        )
        plan = PlacementPlan.parse("A=align,sort;B=dupmark,varcall")
        outcomes = {}
        for shm_mode in (False, True):
            outcomes[shm_mode] = run_placed_pipeline(
                fresh_dataset(),
                plan,
                aligner=snap_aligner,
                reference=reference,
                sort_config=SORT_CONFIG,
                backend="serial",
                transport="tcp",
                broker_shm=shm_mode,
            )
            assert_matches_single(outcomes[shm_mode], single_session,
                                  reference)

        def handoffs(outcome):
            return sum(stat.get("shm_handoffs", 0)
                       for stat in outcome.broker_stats.values())

        assert handoffs(outcomes[False]) == 0
        assert handoffs(outcomes[True]) > 0
        # The handoff saved those bytes from the socket entirely.
        shm_stats = outcomes[True].broker_stats
        copy_stats = outcomes[False].broker_stats
        for edge, stat in shm_stats.items():
            if stat.get("shm_handoffs"):
                assert stat["wire_bytes"] < copy_stats[edge]["wire_bytes"]
        for server in servers:
            if server._pool is not None:
                assert shm.list_segments(server._pool.prefix) == []

    def test_killed_worker_redelivered_under_shm(
        self, reads, snap_aligner, reference, monkeypatch,
    ):
        """At-least-once delivery survives shm handoffs: a dead worker's
        leases are reclaimed, its chunks redelivered, no segment
        leaked once the run closes its pool.

        24 small chunks, not the usual 6: each worker prefetches ~7
        chunk names into its local pipeline, so with 6 chunks the
        survivor can hoard the whole edge before the dying worker
        aligns enough reads to die — death must not depend on winning
        that race.
        """
        def dataset24():
            return import_reads(
                reads, "pg24", MemoryStore(), chunk_size=25,
                reference=reference.manifest_entry(),
            )

        single = run_pipeline(
            dataset24(),
            ("align", "sort", "dupmark", "varcall"),
            aligner=snap_aligner,
            reference=reference,
            sort_config=SORT_CONFIG,
            backend="serial",
        )
        servers: list = []
        monkeypatch.setattr(
            "repro.cluster.multiserver.BrokerServer",
            _small_threshold_server(servers),
        )
        plan = PlacementPlan.parse(
            "dying=align;survivor=align;B=sort,dupmark,varcall"
        )

        def factory(server):
            if server == "dying":
                # Dies 5 reads into its second chunk.
                return _DyingAligner(snap_aligner, survive_reads=30)
            return snap_aligner

        placed = run_placed_pipeline(
            dataset24(),
            plan,
            aligner_factory=factory,
            reference=reference,
            sort_config=SORT_CONFIG,
            backend="serial",
            transport="tcp",
            broker_shm=True,
        )
        assert placed.server("dying").killed
        assert placed.total_redelivered > 0
        assert placed.server("dying").chunks \
            + placed.server("survivor").chunks == 24
        assert_matches_single(placed, single, reference)
        for server in servers:
            if server._pool is not None:
                assert server._pool.live_leases == 0
                assert shm.list_segments(server._pool.prefix) == []


# ------------------------------------------- pre-ack resume injection


class TestPreAckResumeInjection:
    def test_resume_preacks_align_and_injects_downstream_items(
        self, fresh_dataset, snap_aligner, reference, single_session,
        tmp_path,
    ):
        """Resuming a multi-group plan whose align work is all journaled
        pre-acks every chunk name AND re-injects the work items onto the
        first boundary edge — downstream stages see the full chunk set
        without a single re-alignment."""
        plan = PlacementPlan.parse("A=align;B=sort,dupmark,varcall")
        dataset = fresh_dataset()
        kwargs = dict(
            aligner=snap_aligner,
            reference=reference,
            sort_config=SORT_CONFIG,
            backend="serial",
        )

        ledger = RunLedger.create(tmp_path, run_id="r1")
        first = run_placed_pipeline(dataset, plan, ledger=ledger,
                                    output_store=MemoryStore(), **kwargs)
        ledger.close()
        assert_matches_single(first, single_session, reference)
        assert first.broker_stats[WORK_EDGE]["total_preacked"] == 0

        resumed_ledger = RunLedger.resume(tmp_path, run_id="r1")
        resumed = run_placed_pipeline(dataset, plan, ledger=resumed_ledger,
                                      output_store=MemoryStore(), **kwargs)
        assert resumed.broker_stats[WORK_EDGE]["total_preacked"] == 6
        assert resumed_ledger.skips.get("work.pre_acked") == 6
        # The align server did no work; the boundary edge still carried
        # every chunk (the coordinator's injected items).
        assert resumed.server("A").chunks == 0
        assert resumed.broker_stats["align->sort"]["total_published"] == 6
        assert_matches_single(resumed, single_session, reference)
        resumed_ledger.close()

    def test_resume_preack_injection_over_tcp(
        self, fresh_dataset, snap_aligner, reference, single_session,
        tmp_path,
    ):
        """Same resume identity when the injected items cross a real
        socket (the edge serializer normalizes both transports)."""
        plan = PlacementPlan.parse("A=align;B=sort,dupmark,varcall")
        dataset = fresh_dataset()
        kwargs = dict(
            aligner=snap_aligner,
            reference=reference,
            sort_config=SORT_CONFIG,
            backend="serial",
            transport="tcp",
        )

        ledger = RunLedger.create(tmp_path, run_id="r1")
        run_placed_pipeline(dataset, plan, ledger=ledger,
                            output_store=MemoryStore(), **kwargs)
        ledger.close()

        resumed_ledger = RunLedger.resume(tmp_path, run_id="r1")
        resumed = run_placed_pipeline(dataset, plan, ledger=resumed_ledger,
                                      output_store=MemoryStore(), **kwargs)
        assert resumed.broker_stats[WORK_EDGE]["total_preacked"] == 6
        assert resumed.server("A").chunks == 0
        assert_matches_single(resumed, single_session, reference)
        resumed_ledger.close()
