"""Tests for the minimal VCF reader/writer."""

import io

import pytest

from repro.formats.vcf import VariantRecord, VcfFormatError, read_vcf, write_vcf


class TestVariantRecord:
    def test_line_roundtrip(self):
        v = VariantRecord(
            chrom="chr1", pos=100, ref="A", alt="T", qual=42.0,
            info={"DP": 30, "AF": "0.900"},
        )
        back = VariantRecord.from_line(v.to_line())
        assert back.chrom == "chr1"
        assert back.pos == 100
        assert back.ref == "A" and back.alt == "T"
        assert back.qual == pytest.approx(42.0)
        assert back.info == {"DP": "30", "AF": "0.900"}

    def test_flag_info(self):
        v = VariantRecord(chrom="c", pos=1, ref="A", alt="G", qual=1.0,
                          info={"VALIDATED": True})
        back = VariantRecord.from_line(v.to_line())
        assert back.info["VALIDATED"] is True

    def test_empty_info(self):
        v = VariantRecord(chrom="c", pos=1, ref="A", alt="G", qual=1.0)
        assert b"\t.\n" in v.to_line()

    def test_malformed(self):
        with pytest.raises(VcfFormatError):
            VariantRecord.from_line(b"chr1\t100\n")


class TestFileIO:
    def test_write_read(self, tmp_path):
        variants = [
            VariantRecord(chrom="chr1", pos=i, ref="A", alt="C", qual=10.0)
            for i in (5, 50, 500)
        ]
        path = tmp_path / "x.vcf"
        count = write_vcf(variants, path,
                          contigs=[{"name": "chr1", "length": 1000}])
        assert count == 3
        text = path.read_text()
        assert text.startswith("##fileformat=VCF")
        assert "##contig=<ID=chr1,length=1000>" in text
        back = read_vcf(path)
        assert [v.pos for v in back] == [5, 50, 500]

    def test_stream(self):
        buf = io.BytesIO()
        write_vcf([VariantRecord("c", 1, "A", "G", 5.0)], buf)
        buf.seek(0)
        assert len(read_vcf(buf)) == 1
