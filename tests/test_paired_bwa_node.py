"""Tests for the partitioned-executor BWA paired node (§4.3)."""

import threading

import pytest

from repro.align.bwa import BwaMemAligner, FMIndex
from repro.core.paired_bwa import BwaPairedAlignerNode, make_bwa_paired_executor
from repro.core.ops import ChunkWorkItem
from repro.agd.manifest import ChunkEntry
from repro.dataflow.executor import BusyCounter
from repro.dataflow.resources import ResourceManager
from repro.dataflow.session import NodeContext
from repro.genome.synthetic import ReadSimulator, synthetic_reference


@pytest.fixture(scope="module")
def paired_world():
    ref = synthetic_reference(25_000, seed=611)
    sim = ReadSimulator(ref, paired=True, insert_size_mean=310,
                        insert_size_sd=20, seed=612)
    reads, origins = sim.simulate(200)
    return ref, reads, origins


def make_ctx(resources):
    return NodeContext(
        resources=resources,
        busy_counter=BusyCounter(),
        stats_lock=threading.Lock(),
    )


class TestMakeExecutor:
    def test_partition_sizes(self):
        executor = make_bwa_paired_executor(4, serial_threads=1)
        assert executor.group("serial").num_threads == 1
        assert executor.group("parallel").num_threads == 3
        executor.shutdown()

    def test_validation(self):
        with pytest.raises(ValueError):
            make_bwa_paired_executor(1)
        with pytest.raises(ValueError):
            make_bwa_paired_executor(4, serial_threads=4)
        with pytest.raises(ValueError):
            make_bwa_paired_executor(4, serial_threads=0)


class TestBwaPairedNode:
    def test_aligns_pairs_with_inference(self, paired_world):
        ref, reads, origins = paired_world
        aligner = BwaMemAligner(FMIndex(ref))
        assert aligner.insert_model is None
        executor = make_bwa_paired_executor(3)
        resources = ResourceManager()
        resources.register("aligner", aligner)
        resources.register("executor", executor)
        node = BwaPairedAlignerNode("aligner", "executor",
                                    subchunk_pairs=16)
        item = ChunkWorkItem(
            entry=ChunkEntry("p-0", 0, len(reads)),
            columns={"bases": [r.bases for r in reads]},
        )
        [out] = node.process(item, make_ctx(resources))
        # The serial inference step ran.
        assert aligner.insert_model is not None
        assert aligner.insert_model.samples > 0
        # All pairs aligned; mates carry pair flags.
        assert all(r is not None for r in out.results)
        proper = sum(1 for r in out.results if r.flag & 0x2)
        assert proper >= 0.85 * len(out.results)
        exact = 0
        for r, o in zip(out.results, origins):
            _, local = ref.to_local(o.global_pos)
            if r.is_aligned and r.position == local:
                exact += 1
        assert exact >= 0.95 * len(out.results)
        executor.shutdown()

    def test_odd_chunk_rejected(self, paired_world):
        ref, reads, _ = paired_world
        aligner = BwaMemAligner(FMIndex(ref))
        executor = make_bwa_paired_executor(2)
        resources = ResourceManager()
        resources.register("aligner", aligner)
        resources.register("executor", executor)
        node = BwaPairedAlignerNode("aligner", "executor")
        item = ChunkWorkItem(
            entry=ChunkEntry("p-0", 0, 3),
            columns={"bases": [reads[0].bases] * 3},
        )
        with pytest.raises(ValueError, match="odd"):
            node.process(item, make_ctx(resources))
        executor.shutdown()

    def test_invalid_subchunk(self):
        with pytest.raises(ValueError):
            BwaPairedAlignerNode("a", "e", subchunk_pairs=0)
