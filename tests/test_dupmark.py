"""Tests for Samblaster-style duplicate marking (§4.3, §5.6)."""

import pytest

from repro.align.result import (
    FLAG_DUPLICATE,
    FLAG_FIRST_IN_PAIR,
    FLAG_PAIRED,
    FLAG_REVERSE,
    AlignmentResult,
)
from repro.core.dupmark import (
    DupmarkStats,
    fragment_signature,
    mark_duplicates,
    mark_duplicates_results,
    signature,
    unclipped_position,
)


def aligned(pos, contig=0, reverse=False, cigar=b"10M", **kw):
    flag = FLAG_REVERSE if reverse else 0
    return AlignmentResult(flag=flag, contig_index=contig, position=pos,
                           cigar=cigar, **kw)


class TestUnclippedPosition:
    def test_forward_no_clip(self):
        assert unclipped_position(aligned(100)) == 100

    def test_forward_soft_clip(self):
        assert unclipped_position(aligned(100, cigar=b"5S5M")) == 95

    def test_reverse_end(self):
        # Reverse 5' end is the alignment end.
        assert unclipped_position(aligned(100, reverse=True)) == 109

    def test_reverse_with_trailing_clip(self):
        assert unclipped_position(
            aligned(100, reverse=True, cigar=b"5M5S")
        ) == 109

    def test_clip_insensitive_signature(self):
        """Duplicates with different clipping share a signature."""
        a = aligned(100, cigar=b"10M")
        b = aligned(103, cigar=b"3S7M")
        assert signature(a) == signature(b)


class TestSignature:
    def test_unmapped_none(self):
        assert signature(AlignmentResult()) is None
        assert fragment_signature(AlignmentResult()) is None

    def test_strand_distinguishes(self):
        assert signature(aligned(100)) != signature(aligned(100, reverse=True))

    def test_contig_distinguishes(self):
        assert signature(aligned(100, contig=0)) != signature(
            aligned(100, contig=1)
        )

    def test_paired_mates_share_fragment_signature(self):
        r1 = AlignmentResult(
            flag=FLAG_PAIRED | FLAG_FIRST_IN_PAIR, contig_index=0,
            position=100, next_contig_index=0, next_position=300,
            cigar=b"10M",
        )
        r2 = AlignmentResult(
            flag=FLAG_PAIRED | FLAG_REVERSE, contig_index=0, position=300,
            next_contig_index=0, next_position=100, cigar=b"10M",
        )
        # Mate signature uses the mate's raw position; both orderings
        # canonicalize identically for same geometry.
        assert fragment_signature(r1)[0] == "pair"
        assert fragment_signature(r2)[0] == "pair"


class TestMarkResults:
    def test_first_kept_rest_marked(self):
        results = [aligned(100), aligned(100), aligned(100)]
        stats = DupmarkStats()
        out = mark_duplicates_results(results, stats)
        assert [r.is_duplicate for r in out] == [False, True, True]
        assert stats.duplicates_marked == 2

    def test_distinct_not_marked(self):
        results = [aligned(100), aligned(101), aligned(100, reverse=True)]
        out = mark_duplicates_results(results)
        assert not any(r.is_duplicate for r in out)

    def test_unmapped_never_marked(self):
        results = [AlignmentResult(), AlignmentResult()]
        stats = DupmarkStats()
        out = mark_duplicates_results(results, stats)
        assert not any(r.is_duplicate for r in out)
        assert stats.unmapped == 2

    def test_input_not_mutated(self):
        results = [aligned(100), aligned(100)]
        mark_duplicates_results(results)
        assert not results[1].is_duplicate


class TestMarkDataset:
    def test_in_place_marking(self, aligned_dataset, origins):
        stats = mark_duplicates(aligned_dataset)
        assert stats.records == aligned_dataset.total_records
        true_dups = sum(1 for o in origins if o.is_duplicate)
        # Every planted PCR duplicate must be caught (same origin =>
        # same signature); coincidental position collisions may add more.
        assert stats.duplicates_marked >= true_dups
        results = aligned_dataset.read_column("results")
        assert sum(r.is_duplicate for r in results) == stats.duplicates_marked

    def test_planted_duplicates_found(self, aligned_dataset, origins, reference):
        mark_duplicates(aligned_dataset)
        results = aligned_dataset.read_column("results")
        seen_positions = set()
        for result, origin in zip(results, origins):
            if origin.is_duplicate and origin.global_pos in seen_positions:
                if result.is_aligned:
                    assert result.is_duplicate
            seen_positions.add(origin.global_pos)

    def test_requires_results_column(self, dataset):
        with pytest.raises(ValueError):
            mark_duplicates(dataset)

    def test_only_results_column_rewritten(self, aligned_dataset):
        """§5.6: 'only the results column needs to be read/written'."""
        store = aligned_dataset.store
        writes = []
        original_put = store.put

        def spy_put(key, data):
            writes.append(key)
            original_put(key, data)

        store.put = spy_put
        mark_duplicates(aligned_dataset)
        assert writes, "expected some chunks to be rewritten"
        assert all(key.endswith(".results") for key in writes)

    def test_agrees_with_samblaster_baseline(self, aligned_dataset, reads):
        """Persona and the samblaster-like baseline mark the same set."""
        import io

        from repro.core.baselines import SamblasterLike, SamblasterReport
        from repro.formats.converters import export_sam

        buf = io.BytesIO()
        export_sam(aligned_dataset, buf)
        report = SamblasterReport()
        marked_sam = SamblasterLike().mark(
            buf.getvalue(), aligned_dataset.manifest.reference, report
        )
        stats = mark_duplicates(aligned_dataset)
        assert report.duplicates_marked == stats.duplicates_marked
        # Same reads marked, by name.
        from repro.formats.sam import read_sam

        _, sam_records = read_sam(io.BytesIO(marked_sam))
        sam_marked = {
            r.qname for r in sam_records if r.flag & FLAG_DUPLICATE
        }
        results = aligned_dataset.read_column("results")
        metas = aligned_dataset.read_column("metadata")
        agd_marked = {
            m.split()[0].decode()
            for m, r in zip(metas, results)
            if r.is_duplicate
        }
        assert sam_marked == agd_marked


class TestPairedDupmark:
    """Paired fragments: PCR duplicates share both mates' coordinates."""

    @pytest.fixture(scope="class")
    def paired_marked(self):
        from repro.align.bwa import BwaMemAligner, FMIndex
        from repro.genome.synthetic import ReadSimulator, synthetic_reference

        ref = synthetic_reference(20_000, seed=881)
        sim = ReadSimulator(ref, paired=True, duplicate_fraction=0.2,
                            insert_size_mean=300, insert_size_sd=20,
                            seed=882)
        reads, origins = sim.simulate(300)
        aligner = BwaMemAligner(FMIndex(ref))
        aligner.infer_insert_size(
            [(reads[i].bases, reads[i + 1].bases) for i in range(0, 60, 2)]
        )
        results = []
        for i in range(0, len(reads), 2):
            r1, r2 = aligner.align_pair(reads[i].bases, reads[i + 1].bases)
            results.extend((r1, r2))
        marked = mark_duplicates_results(results)
        return origins, marked

    def test_planted_pair_duplicates_found(self, paired_marked):
        origins, marked = paired_marked
        planted = sum(1 for o in origins if o.is_duplicate)
        found = sum(1 for r in marked if r.is_duplicate)
        assert planted > 10
        # Every planted duplicate fragment contributes 2 reads; allow a
        # small shortfall for pairs that failed to align properly.
        assert found >= 0.9 * planted

    def test_non_duplicates_spared(self, paired_marked):
        origins, marked = paired_marked
        false_marks = sum(
            1 for o, r in zip(origins, marked)
            if r.is_duplicate and not o.is_duplicate
        )
        # Coincidental fragment collisions are possible but rare.
        assert false_marks <= 4
