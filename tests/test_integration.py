"""Cross-module integration tests: the full Persona workflow."""

import io

import pytest

from repro.agd.dataset import AGDDataset
from repro.cluster.multiserver import run_multi_server_alignment
from repro.core.dupmark import mark_duplicates
from repro.core.filters import by_min_mapq, filter_dataset
from repro.core.pipelines import align_dataset, build_snap_aligner
from repro.core.sort import SortConfig, sort_dataset, verify_sorted
from repro.core.subgraphs import AlignGraphConfig
from repro.core.varcall import call_variants
from repro.formats.converters import export_sam, import_fastq_stream
from repro.formats.fastq import fastq_bytes
from repro.formats.sam import read_sam
from repro.genome.synthetic import synthetic_dataset
from repro.storage.base import MemoryStore
from repro.storage.ceph import CephConfig, CephStore, SimulatedCephCluster


class TestFullWorkflow:
    """FASTQ -> AGD -> align -> sort -> dupmark -> filter -> SAM/VCF."""

    @pytest.fixture(scope="class")
    def world(self):
        reference, reads, origins = synthetic_dataset(
            genome_length=25_000, coverage=4.0, seed=2024,
            duplicate_fraction=0.15,
        )
        return reference, reads, origins

    def test_end_to_end(self, world):
        reference, reads, origins = world
        store = MemoryStore()
        # 1. Import from FASTQ (sequencer output).
        dataset = import_fastq_stream(
            io.BytesIO(fastq_bytes(reads)), "e2e", store, chunk_size=128
        )
        dataset.manifest.reference = reference.manifest_entry()
        assert dataset.total_records == len(reads)
        # 2. Align.
        aligner = build_snap_aligner(reference)
        outcome = align_dataset(
            dataset, aligner, config=AlignGraphConfig(executor_threads=2)
        )
        assert outcome.total_reads == len(reads)
        # 3. Sort by location.
        sorted_ds = sort_dataset(
            dataset, MemoryStore(), SortConfig(chunks_per_superchunk=3)
        )
        assert verify_sorted(sorted_ds)
        # 4. Mark duplicates.
        stats = mark_duplicates(sorted_ds)
        true_dups = sum(1 for o in origins if o.is_duplicate)
        assert stats.duplicates_marked >= true_dups > 0
        # 5. Filter low-quality.
        filtered = filter_dataset(sorted_ds, by_min_mapq(20), MemoryStore())
        assert 0 < filtered.total_records <= sorted_ds.total_records
        # 6. Export SAM, spot-check.
        buf = io.BytesIO()
        count = export_sam(sorted_ds, buf)
        assert count == len(reads)
        buf.seek(0)
        header, records = read_sam(buf)
        assert header.sort_order == "coordinate"
        keys = [r.location_key() for r in records]
        assert keys == sorted(keys)
        # 7. Variant call — clean reads against own reference: few calls.
        variants = call_variants(sorted_ds, reference)
        assert len(variants) < 10

    def test_alignment_accuracy_vs_ground_truth(self, world):
        reference, reads, origins = world
        store = MemoryStore()
        dataset = import_fastq_stream(
            io.BytesIO(fastq_bytes(reads)), "acc", store, chunk_size=128
        )
        dataset.manifest.reference = reference.manifest_entry()
        aligner = build_snap_aligner(reference)
        align_dataset(dataset, aligner,
                      config=AlignGraphConfig(executor_threads=2))
        results = dataset.read_column("results")
        exact = 0
        for result, origin in zip(results, origins):
            if not result.is_aligned:
                continue
            contig, local = reference.to_local(origin.global_pos)
            if result.position == local and result.is_reverse == origin.reverse:
                exact += 1
        assert exact / len(origins) > 0.97


class TestCephIntegration:
    def test_dataset_on_ceph(self, reads, reference):
        """AGD over the simulated object store: write, read back, align."""
        cluster = SimulatedCephCluster(CephConfig(
            disk_bandwidth=1e9, network_bandwidth=4e9))
        store = CephStore(cluster, prefix="genomes/e2e/")
        from repro.formats.converters import import_reads

        dataset = import_reads(reads, "ceph-ds", store, chunk_size=150,
                               reference=reference.manifest_entry())
        assert dataset.read_column("bases") == [r.bases for r in reads]
        aligner = build_snap_aligner(reference)
        outcome = align_dataset(
            dataset, aligner, config=AlignGraphConfig(executor_threads=2)
        )
        assert outcome.total_reads == len(reads)
        assert cluster.bytes_read > 0
        assert cluster.bytes_written > 0

    def test_multi_server_over_ceph(self, reads, reference):
        """The §5.5 topology: N servers, shared Ceph, manifest server."""
        from repro.formats.converters import import_reads

        cluster = SimulatedCephCluster(CephConfig(
            disk_bandwidth=2e9, network_bandwidth=8e9))
        input_store = CephStore(cluster, prefix="in/")
        dataset = import_reads(reads, "dist", input_store, chunk_size=100,
                               reference=reference.manifest_entry())
        aligner = build_snap_aligner(reference)
        outcome = run_multi_server_alignment(
            dataset,
            aligner_factory=lambda sid: aligner,
            output_store_factory=lambda sid: CephStore(cluster, prefix="out/"),
            num_servers=2,
            config=AlignGraphConfig(executor_threads=1),
        )
        assert outcome.total_chunks == dataset.num_chunks
        assert outcome.completion_imbalance < 50  # both servers participated


class TestManifestRebuild:
    def test_reconstruct_after_loss(self, dataset, tmp_path):
        """§3: the manifest is reconstructible from chunk files."""
        from repro.agd.manifest import reconstruct_manifest
        from repro.storage.base import DirectoryStore

        disk = DirectoryStore(tmp_path)
        for column in dataset.columns:
            for entry in dataset.manifest.chunks:
                key = entry.chunk_file(column)
                disk.put(key, dataset.store.get(key))
        rebuilt = reconstruct_manifest(tmp_path)
        assert rebuilt.total_records == dataset.total_records
        assert rebuilt.columns == sorted(dataset.columns)
        rebuilt_ds = AGDDataset(rebuilt, disk)
        assert rebuilt_ds.read_column("bases") == dataset.read_column("bases")
