"""Tests for the AGD manifest (§3, Figure 2)."""

import pytest

from repro.agd.chunk import write_chunk
from repro.agd.manifest import (
    ChunkEntry,
    Manifest,
    ManifestError,
    reconstruct_manifest,
)


def make_manifest() -> Manifest:
    return Manifest(
        name="test",
        columns=["bases", "metadata", "qual"],
        chunks=[
            ChunkEntry("test-0", 0, 100),
            ChunkEntry("test-1", 100, 100),
            ChunkEntry("test-2", 200, 31),
        ],
        reference=[{"name": "chr1", "length": 5000}],
    )


class TestManifest:
    def test_totals(self):
        m = make_manifest()
        assert m.total_records == 231
        assert m.num_chunks == 3

    def test_chunk_files(self):
        m = make_manifest()
        assert m.chunk_files("bases") == [
            "test-0.bases", "test-1.bases", "test-2.bases"
        ]

    def test_missing_column(self):
        with pytest.raises(ManifestError):
            make_manifest().chunk_files("results")

    def test_add_column(self):
        m = make_manifest()
        m.add_column("results")
        assert m.has_column("results")
        with pytest.raises(ManifestError):
            m.add_column("results")

    def test_gap_in_ordinals_rejected(self):
        with pytest.raises(ManifestError):
            Manifest(
                name="bad",
                columns=["bases"],
                chunks=[ChunkEntry("b-0", 0, 10), ChunkEntry("b-1", 11, 10)],
            )

    def test_empty_chunk_rejected(self):
        with pytest.raises(ManifestError):
            Manifest(name="bad", columns=["bases"],
                     chunks=[ChunkEntry("b-0", 0, 0)])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ManifestError):
            Manifest(name="bad", columns=["bases", "bases"], chunks=[])

    def test_empty_name_rejected(self):
        with pytest.raises(ManifestError):
            Manifest(name="", columns=["bases"], chunks=[])

    def test_chunk_for_record(self):
        m = make_manifest()
        entry, local = m.chunk_for_record(0)
        assert entry.path == "test-0" and local == 0
        entry, local = m.chunk_for_record(150)
        assert entry.path == "test-1" and local == 50
        entry, local = m.chunk_for_record(230)
        assert entry.path == "test-2" and local == 30

    def test_chunk_for_record_bounds(self):
        m = make_manifest()
        with pytest.raises(IndexError):
            m.chunk_for_record(231)
        with pytest.raises(IndexError):
            m.chunk_for_record(-1)


class TestJson:
    def test_roundtrip(self):
        m = make_manifest()
        back = Manifest.from_json(m.to_json())
        assert back.name == m.name
        assert back.columns == m.columns
        assert back.chunks == m.chunks
        assert back.reference == m.reference
        assert back.sort_order == m.sort_order

    def test_save_load(self, tmp_path):
        m = make_manifest()
        m.save(tmp_path)
        assert (tmp_path / "manifest.json").exists()
        back = Manifest.load(tmp_path)
        assert back.chunks == m.chunks

    def test_load_missing(self, tmp_path):
        with pytest.raises(ManifestError):
            Manifest.load(tmp_path)

    def test_malformed_json(self):
        with pytest.raises(ManifestError):
            Manifest.from_json("{not json")

    def test_missing_field(self):
        with pytest.raises(ManifestError):
            Manifest.from_json('{"name": "x"}')


class TestReconstruction:
    """§3: the manifest 'can be reconstructed from the set of chunk files
    it describes'."""

    def test_reconstruct(self, tmp_path):
        for i, (first, count) in enumerate([(0, 3), (3, 2)]):
            records = [b"ACGT"] * count
            (tmp_path / f"demo-{i}.bases").write_bytes(
                write_chunk(records, "bases", first_ordinal=first)
            )
            (tmp_path / f"demo-{i}.qual").write_bytes(
                write_chunk([b"IIII"] * count, "text", first_ordinal=first)
            )
        m = reconstruct_manifest(tmp_path)
        assert m.name == "demo"
        assert m.columns == ["bases", "qual"]
        assert m.total_records == 5

    def test_reconstruct_empty_dir(self, tmp_path):
        with pytest.raises(ManifestError):
            reconstruct_manifest(tmp_path)

    def test_reconstruct_mismatched_layout(self, tmp_path):
        (tmp_path / "d-0.bases").write_bytes(
            write_chunk([b"AC"], "bases", first_ordinal=0)
        )
        (tmp_path / "d-0.qual").write_bytes(
            write_chunk([b"II", b"II"], "text", first_ordinal=0)
        )
        with pytest.raises(ManifestError):
            reconstruct_manifest(tmp_path)
