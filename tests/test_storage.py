"""Tests for chunk stores, disk models, and the Ceph simulation."""

import threading
import time

import pytest

from repro.storage.base import DirectoryStore, MemoryStore, StorageError
from repro.storage.ceph import CephConfig, CephStore, SimulatedCephCluster
from repro.storage.diskmodel import (
    DiskModel,
    WritebackDiskModel,
    raid0,
)
from repro.storage.local import CountingStore, ModeledDiskStore


class TestMemoryStore:
    def test_put_get(self):
        s = MemoryStore()
        s.put("k", b"v")
        assert s.get("k") == b"v"
        assert s.exists("k")

    def test_missing(self):
        with pytest.raises(StorageError):
            MemoryStore().get("nope")

    def test_delete(self):
        s = MemoryStore()
        s.put("k", b"v")
        s.delete("k")
        assert not s.exists("k")
        with pytest.raises(StorageError):
            s.delete("k")

    def test_keys_and_total(self):
        s = MemoryStore()
        s.put("a", b"12")
        s.put("b", b"345")
        assert sorted(s.keys()) == ["a", "b"]
        assert s.total_bytes == 5


class TestDirectoryStore:
    def test_roundtrip(self, tmp_path):
        s = DirectoryStore(tmp_path)
        s.put("x.bases", b"data")
        assert s.get("x.bases") == b"data"
        assert list(s.keys()) == ["x.bases"]
        s.delete("x.bases")
        assert not s.exists("x.bases")

    def test_nested_keys(self, tmp_path):
        s = DirectoryStore(tmp_path)
        s.put("sub/dir/file", b"x")
        assert s.get("sub/dir/file") == b"x"

    def test_bad_keys_rejected(self, tmp_path):
        s = DirectoryStore(tmp_path)
        for bad in ("", "/abs", "../escape", "a/../../b"):
            with pytest.raises(StorageError):
                s.put(bad, b"x")

    def test_missing(self, tmp_path):
        with pytest.raises(StorageError):
            DirectoryStore(tmp_path).get("ghost")


class TestDiskModel:
    def test_timing(self):
        disk = DiskModel(read_bandwidth=10e6)
        start = time.monotonic()
        disk.read(500_000)  # 0.05s at 10MB/s
        elapsed = time.monotonic() - start
        # Generous upper bound: shared CI runners oversleep wildly.
        assert 0.04 < elapsed < 0.6

    def test_counters(self):
        disk = DiskModel(read_bandwidth=1e9)
        disk.read(100)
        disk.write(200)
        assert disk.counters.bytes_read == 100
        assert disk.counters.bytes_written == 200
        assert disk.counters.read_ops == 1

    def test_serialization_under_contention(self):
        """Two concurrent reads on one disk take ~2x one read."""
        disk = DiskModel(read_bandwidth=10e6)
        start = time.monotonic()
        threads = [
            threading.Thread(target=disk.read, args=(400_000,))
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.monotonic() - start
        assert elapsed > 0.07  # 2 x 0.04s serialized

    def test_raid0_scales_bandwidth(self):
        array = raid0(6, 10e6)
        assert array.read_bandwidth == 60e6
        start = time.monotonic()
        array.read(3_000_000)  # 0.05s striped vs 0.3s on a single disk
        # Must beat the single-disk time even with CI scheduling noise.
        assert time.monotonic() - start < 0.2

    def test_invalid(self):
        with pytest.raises(ValueError):
            DiskModel(read_bandwidth=0)
        with pytest.raises(ValueError):
            raid0(0, 1e6)


class TestWritebackDiskModel:
    def test_small_writes_free(self):
        disk = WritebackDiskModel(read_bandwidth=1e6, dirty_limit=1_000_000)
        start = time.monotonic()
        disk.write(1000)
        # No storm -> no modeled sleep; bound is lax for slow CI runners.
        assert time.monotonic() - start < 0.1
        assert disk.writeback_storms == 0

    def test_storm_when_dirty_limit_hit(self):
        disk = WritebackDiskModel(
            read_bandwidth=10e6, write_bandwidth=10e6, dirty_limit=400_000
        )
        start = time.monotonic()
        disk.write(500_000)  # crosses limit -> synchronous flush
        elapsed = time.monotonic() - start
        assert disk.writeback_storms == 1
        assert elapsed > 0.03

    def test_flush_drains(self):
        disk = WritebackDiskModel(read_bandwidth=10e6, dirty_limit=1_000_000)
        disk.write(100_000)
        disk.flush()
        # Second flush: nothing left.
        start = time.monotonic()
        disk.flush()
        assert time.monotonic() - start < 0.1

    def test_storm_starves_reads(self):
        """Fig. 5a's mechanism: reads queue behind the writeback storm."""
        disk = WritebackDiskModel(
            read_bandwidth=20e6, write_bandwidth=5e6, dirty_limit=300_000
        )
        storm = threading.Thread(target=disk.write, args=(400_000,))
        storm.start()
        time.sleep(0.005)
        start = time.monotonic()
        disk.read(1000)  # must wait for the storm (~0.08s)
        waited = time.monotonic() - start
        storm.join()
        assert waited > 0.02


class TestModeledDiskStore:
    def test_counts_and_data(self):
        store = ModeledDiskStore(DiskModel(read_bandwidth=1e9))
        store.put("k", b"hello")
        assert store.get("k") == b"hello"
        assert store.bytes_written == 5
        assert store.bytes_read == 5

    def test_counting_store(self):
        store = CountingStore()
        store.put("k", b"abc")
        store.get("k")
        store.get("k")
        assert store.bytes_written == 3
        assert store.bytes_read == 6


class TestCephSimulation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            CephConfig(num_nodes=0)
        with pytest.raises(ValueError):
            CephConfig(num_nodes=3, replication=4)

    def test_placement_deterministic_and_replicated(self):
        cluster = SimulatedCephCluster(CephConfig(
            num_nodes=5, replication=3, disk_bandwidth=1e9,
            network_bandwidth=1e9,
        ))
        nodes = cluster.placement("object-1")
        assert len(nodes) == 3
        assert len(set(nodes)) == 3
        assert nodes == cluster.placement("object-1")

    def test_put_get(self):
        cluster = SimulatedCephCluster(CephConfig(
            disk_bandwidth=1e9, network_bandwidth=1e9))
        cluster.put("a", b"data")
        assert cluster.get("a") == b"data"
        assert cluster.bytes_read == 4
        assert cluster.bytes_written == 4

    def test_missing(self):
        cluster = SimulatedCephCluster(CephConfig(
            disk_bandwidth=1e9, network_bandwidth=1e9))
        with pytest.raises(StorageError):
            cluster.get("ghost")

    def test_network_cap_bounds_throughput(self):
        cfg = CephConfig(num_nodes=7, disks_per_node=10,
                         disk_bandwidth=50e6, network_bandwidth=50e6)
        cluster = SimulatedCephCluster(cfg)
        bw = cluster.rados_bench(object_size=100_000, objects=10,
                                 concurrency=5)
        assert bw <= 60e6  # close to the 50 MB/s cap (timing slack)

    def test_store_facade_prefix(self):
        cluster = SimulatedCephCluster(CephConfig(
            disk_bandwidth=1e9, network_bandwidth=1e9))
        a = CephStore(cluster, prefix="dsA/")
        b = CephStore(cluster, prefix="dsB/")
        a.put("chunk", b"1")
        b.put("chunk", b"2")
        assert a.get("chunk") == b"1"
        assert b.get("chunk") == b"2"
        assert list(a.keys()) == ["chunk"]
