"""Scalar-reference vs columnar-vectorized kernel equivalence.

The contract under test: every vectorized kernel in
``repro.core.columnar`` must produce output *identical* to its scalar
reference — same pileup columns and VCF records, same sort permutation
and sorted-dataset bytes, same duplicate marks and stats — including on
adversarial inputs (soft clips, indels, reverse strands, unmapped and
pre-marked-duplicate records) and across all three execution backends.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agd.dataset import AGDDataset
from repro.agd.manifest import Manifest
from repro.align.result import AlignmentResult, cigar_operations, make_cigar
from repro.core import columnar
from repro.core.dupmark import (
    DupmarkStats,
    fragment_signature,
    mark_duplicates,
    scan_signatures,
)
from repro.core.sort import SortConfig, sort_dataset, sort_key_for
from repro.core.varcall import (
    VarCallConfig,
    call_from_pileup,
    call_variants,
    pileup_dataset,
    pileup_records,
)
from repro.dataflow.backends import make_backend
from repro.storage.base import MemoryStore

# ---------------------------------------------------------------------------
# Strategies: adversarial alignment records with consistent read data.

BASES = b"ACGTN"


@st.composite
def cigar_ops(draw):
    """CIGAR op lists with soft clips, indels, and skips."""
    ops = []
    if draw(st.booleans()):
        ops.append((draw(st.integers(1, 6)), "S"))
    ops.append((draw(st.integers(1, 20)), "M"))
    for _ in range(draw(st.integers(0, 2))):
        ops.append((draw(st.integers(1, 4)),
                    draw(st.sampled_from(["I", "D", "N", "X", "="]))))
        ops.append((draw(st.integers(1, 10)), "M"))
    if draw(st.booleans()):
        ops.append((draw(st.integers(1, 6)), "S"))
    return ops


@st.composite
def aligned_triples(draw):
    """(AlignmentResult, bases, quals) with read length matching CIGAR."""
    unmapped = draw(st.integers(0, 9)) == 0
    if unmapped:
        n = draw(st.integers(1, 20))
        result = AlignmentResult()
        bases = bytes(draw(st.sampled_from(BASES)) for _ in range(n))
        return result, bases, b"I" * n
    ops = draw(cigar_ops())
    cigar = make_cigar(ops)
    read_len = sum(n for n, op in ops if op in "MIS=X")
    flag = 0
    if draw(st.booleans()):
        flag |= 0x10  # reverse
    if draw(st.integers(0, 4)) == 0:
        flag |= 0x400  # pre-marked duplicate
    kwargs = {}
    if draw(st.booleans()):
        flag |= 0x1  # paired
        kwargs = dict(
            next_contig_index=draw(st.integers(-1, 2)),
            next_position=draw(st.integers(0, 60)),
        )
    result = AlignmentResult(
        flag=flag,
        mapq=draw(st.integers(0, 60)),
        contig_index=draw(st.integers(0, 2)),
        position=draw(st.integers(0, 150)),
        cigar=cigar,
        **kwargs,
    )
    bases = bytes(draw(st.sampled_from(BASES)) for _ in range(read_len))
    quals = bytes(draw(st.integers(33, 74)) for _ in range(read_len))
    return result, bases, quals


triple_lists = st.lists(aligned_triples(), min_size=1, max_size=40)


# ---------------------------------------------------------------------------
# CIGAR parsing and results-array decode.

class TestResultsArrays:
    @given(triple_lists)
    @settings(max_examples=40, deadline=None)
    def test_cigar_parse_matches_scalar(self, triples):
        results = [t[0] for t in triples]
        arrays = columnar.ResultsArrays.from_records(results)
        ops = columnar.parse_cigars(
            arrays.cigar_buf, arrays.cigar_starts, arrays.cigar_ends
        )
        for i, result in enumerate(results):
            expected = cigar_operations(result.cigar)
            mask = ops.record == i
            got = [
                (int(length), chr(int(op)))
                for length, op in zip(ops.length[mask], ops.op[mask])
            ]
            assert got == expected

    @given(triple_lists)
    @settings(max_examples=25, deadline=None)
    def test_blob_decode_matches_objects(self, triples):
        from repro.agd.chunk import write_chunk

        results = [t[0] for t in triples]
        blob = write_chunk(results, "results")
        arrays = columnar.read_results_arrays(blob)
        assert len(arrays) == len(results)
        for i, r in enumerate(results):
            assert int(arrays.flag[i]) == r.flag
            assert int(arrays.contig_index[i]) == r.contig_index
            assert int(arrays.position[i]) == r.position
            assert arrays.cigar(i) == r.cigar

    def test_malformed_cigar_raises(self):
        buf = np.frombuffer(b"5M3", dtype=np.uint8)
        with pytest.raises(ValueError):
            columnar.parse_cigars(
                buf, np.array([0], np.int64), np.array([3], np.int64)
            )
        buf = np.frombuffer(b"0M", dtype=np.uint8)
        with pytest.raises(ValueError):
            columnar.parse_cigars(
                buf, np.array([0], np.int64), np.array([2], np.int64)
            )


# ---------------------------------------------------------------------------
# Pileup equivalence.

class TestPileupEquivalence:
    @given(triple_lists)
    @settings(max_examples=40, deadline=None)
    def test_partial_matches_scalar_columns(self, triples):
        results = [t[0] for t in triples]
        bases = [t[1] for t in triples]
        quals = [t[2] for t in triples]
        config = VarCallConfig(min_mapq=20, min_base_quality=15)
        scalar = dict(pileup_records(results, bases, quals, config))
        vector = columnar.pileup_to_columns(
            columnar.pileup_partial(results, bases, quals, config)
        )
        assert set(scalar) == set(vector)
        for key in scalar:
            assert scalar[key].depth == vector[key].depth
            assert scalar[key].counts == vector[key].counts

    @given(triple_lists)
    @settings(max_examples=20, deadline=None)
    def test_chunked_merge_is_exact(self, triples):
        """Partials accumulated per chunk merge to the full pileup."""
        results = [t[0] for t in triples]
        bases = [t[1] for t in triples]
        quals = [t[2] for t in triples]
        config = VarCallConfig(min_mapq=0, min_base_quality=0,
                               skip_duplicates=False)
        whole = columnar.pileup_partial(results, bases, quals, config)
        merged: dict = {}
        for lo in range(0, len(triples), 7):
            columnar.merge_pileup_partials(
                merged,
                columnar.pileup_partial(
                    results[lo:lo + 7], bases[lo:lo + 7], quals[lo:lo + 7],
                    config,
                ),
            )
        assert columnar.pileup_to_columns(merged) == \
            columnar.pileup_to_columns(whole)

    def test_call_from_pileup_arrays_identical(self, aligned_dataset,
                                               reference):
        config = VarCallConfig(min_depth=2)
        scalar = call_from_pileup(
            pileup_dataset(aligned_dataset, config), reference, config
        )
        from repro.core.varcall import pileup_dataset_arrays

        vector = columnar.call_from_pileup_arrays(
            pileup_dataset_arrays(aligned_dataset, config), reference, config
        )
        assert vector == scalar


# ---------------------------------------------------------------------------
# Sort-key equivalence.

class TestSortEquivalence:
    @given(triple_lists)
    @settings(max_examples=40, deadline=None)
    def test_location_permutation_matches_list_sort(self, triples):
        rows = [
            (t[0], f"meta{i:04d}".encode()) for i, t in enumerate(triples)
        ]
        perm = columnar.row_sort_permutation("location", rows)
        assert perm is not None
        assert [rows[i] for i in perm] == \
            sorted(rows, key=sort_key_for("location"))

    @given(st.lists(st.binary(min_size=0, max_size=12), min_size=1,
                    max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_metadata_permutation_matches_list_sort(self, metas):
        rows = [(AlignmentResult(), m) for m in metas]
        perm = columnar.row_sort_permutation("metadata", rows)
        if any(b"\0" in m for m in metas):
            assert perm is None  # NUL bytes: packed keys would diverge
            return
        assert perm is not None
        assert [rows[i][1] for i in perm] == \
            [r[1] for r in sorted(rows, key=sort_key_for("metadata"))]

    def test_unpackable_positions_fall_back(self):
        rows = [(AlignmentResult(flag=0, contig_index=0, position=1 << 40,
                                 cigar=b"4M"), b"m")]
        assert columnar.row_sort_keys("location", rows) is None


# ---------------------------------------------------------------------------
# Duplicate-signature equivalence.

class TestDupmarkEquivalence:
    @given(triple_lists)
    @settings(max_examples=40, deadline=None)
    def test_tracker_matches_scan_signatures(self, triples):
        results = [t[0] for t in triples]
        scalar_stats, vector_stats = DupmarkStats(), DupmarkStats()
        seen: set = set()
        tracker = columnar.DuplicateTracker()
        for lo in range(0, len(results), 9):
            chunk = results[lo:lo + 9]
            expected = scan_signatures(
                [fragment_signature(r) for r in chunk], seen, scalar_stats
            )
            sigs, valid = columnar.fragment_signature_arrays(
                columnar.ResultsArrays.from_records(chunk)
            )
            got = tracker.scan(sigs, valid, vector_stats)
            assert got == expected
        assert (scalar_stats.records, scalar_stats.duplicates_marked,
                scalar_stats.unmapped) == \
            (vector_stats.records, vector_stats.duplicates_marked,
             vector_stats.unmapped)

    @given(triple_lists)
    @settings(max_examples=30, deadline=None)
    def test_signature_grouping_matches(self, triples):
        """Two records collide vectorized iff they collide scalar."""
        results = [t[0] for t in triples]
        sigs, valid = columnar.fragment_signature_arrays(
            columnar.ResultsArrays.from_records(results)
        )
        groups_scalar: dict = {}
        groups_vector: dict = {}
        for i, r in enumerate(results):
            sig = fragment_signature(r)
            if sig is not None:
                groups_scalar.setdefault(sig, []).append(i)
            if valid[i]:
                groups_vector.setdefault(sigs[i].tobytes(), []).append(i)
        assert sorted(map(tuple, groups_scalar.values())) == \
            sorted(map(tuple, groups_vector.values()))


# ---------------------------------------------------------------------------
# End-to-end: byte-identical datasets/VCF across kernels and backends.

def _copy_dataset(dataset: AGDDataset) -> AGDDataset:
    store = MemoryStore()
    for key in dataset.store.keys():
        store.put(key, dataset.store.get(key))
    return AGDDataset(Manifest.from_json(dataset.manifest.to_json()), store)


def _store_blobs(store: MemoryStore) -> dict:
    return {key: store.get(key) for key in store.keys()}


@pytest.mark.parametrize("backend_kind", ["serial", "thread", "process"])
class TestBackendEquivalence:
    def test_sort_bytes_identical(self, aligned_dataset, backend_kind):
        scalar_store = MemoryStore()
        sort_dataset(aligned_dataset, scalar_store,
                     SortConfig(chunks_per_superchunk=3, vectorized=False))
        backend = make_backend(backend_kind, workers=2)
        try:
            vector_store = MemoryStore()
            sorted_ds = sort_dataset(
                aligned_dataset, vector_store,
                SortConfig(chunks_per_superchunk=3, merge_partitions=3),
                backend=backend,
            )
        finally:
            backend.shutdown()
        assert _store_blobs(vector_store) == _store_blobs(scalar_store)
        assert sorted_ds.manifest.sort_order == "location"

    def test_dupmark_bytes_identical(self, aligned_dataset, backend_kind):
        scalar_ds = _copy_dataset(aligned_dataset)
        scalar_stats = mark_duplicates(scalar_ds, vectorized=False)
        vector_ds = _copy_dataset(aligned_dataset)
        backend = make_backend(backend_kind, workers=2)
        try:
            vector_stats = mark_duplicates(vector_ds, backend=backend,
                                           vectorized=True)
        finally:
            backend.shutdown()
        assert _store_blobs(vector_ds.store) == _store_blobs(scalar_ds.store)
        assert (vector_stats.records, vector_stats.duplicates_marked,
                vector_stats.unmapped) == \
            (scalar_stats.records, scalar_stats.duplicates_marked,
             scalar_stats.unmapped)

    def test_varcall_vcf_identical(self, aligned_dataset, reference,
                                   backend_kind, tmp_path):
        from repro.formats.vcf import write_vcf

        config = VarCallConfig(min_depth=2)
        scalar = call_variants(aligned_dataset, reference, config,
                               vectorized=False)
        backend = make_backend(backend_kind, workers=2)
        try:
            vector = call_variants(aligned_dataset, reference, config,
                                   backend=backend, vectorized=True)
        finally:
            backend.shutdown()
        assert vector == scalar
        scalar_path = tmp_path / "scalar.vcf"
        vector_path = tmp_path / "vector.vcf"
        write_vcf(scalar, scalar_path, contigs=reference.manifest_entry())
        write_vcf(vector, vector_path, contigs=reference.manifest_entry())
        assert vector_path.read_bytes() == scalar_path.read_bytes()


class TestPartitionedMerge:
    def test_partitioned_merge_uses_backend_kernels(self, aligned_dataset):
        """>= 2 partition kernels actually dispatch through the backend."""
        from repro.core.sort import (
            merge_partition_blobs_task,
            merge_partition_task,
        )
        from repro.dataflow.backends import SerialBackend

        calls: list = []

        class CountingBackend(SerialBackend):
            def run_chunk(self, fn, payloads, shared=None, timeout=300.0):
                if fn in (merge_partition_task, merge_partition_blobs_task):
                    calls.append(len(payloads))
                return super().run_chunk(fn, payloads, shared=shared,
                                         timeout=timeout)

        single_store = MemoryStore()
        sort_dataset(aligned_dataset, single_store,
                     SortConfig(chunks_per_superchunk=3, vectorized=False))
        backend = CountingBackend()
        part_store = MemoryStore()
        scratch = MemoryStore()
        sort_dataset(aligned_dataset, part_store,
                     SortConfig(chunks_per_superchunk=3, merge_partitions=4),
                     scratch_store=scratch, backend=backend)
        assert calls and calls[0] >= 2, \
            "partitioned merge did not dispatch >= 2 kernels"
        # Spill locality: phase 1 spilled per-partition sub-chunks, not
        # whole-run superchunks.
        assert any("-part" in key for key in scratch.keys()), \
            "runs were not spilled as per-partition sub-chunks"
        assert _store_blobs(part_store) == _store_blobs(single_store)

    def test_single_contig_still_partitions(self):
        """Key-range splits work inside one contig too."""
        n = 60
        results = [
            AlignmentResult(flag=0, contig_index=0, position=(n - i) * 3,
                            cigar=b"4M")
            for i in range(n)
        ]
        dataset = AGDDataset.create(
            "one-contig",
            {"results": results,
             "metadata": [f"r{i}".encode() for i in range(n)]},
            MemoryStore(), chunk_size=10,
        )
        single = MemoryStore()
        sort_dataset(dataset, single,
                     SortConfig(chunks_per_superchunk=2, vectorized=False))
        backend = make_backend("serial")
        part = MemoryStore()
        sort_dataset(dataset, part,
                     SortConfig(chunks_per_superchunk=2, merge_partitions=3),
                     backend=backend)
        assert _store_blobs(part) == _store_blobs(single)


# ---------------------------------------------------------------------------
# Satellites: codec levels, payload batching, duplicate blob patching.

class TestCodecLevels:
    def test_leveled_codec_roundtrip(self):
        from repro.agd.chunk import read_chunk, write_chunk
        from repro.agd.compression import leveled_codec

        records = [b"ACGTACGTAC" * 30] * 10
        fast = write_chunk(records, "text", codec=leveled_codec("gzip", 1))
        default = write_chunk(records, "text")
        assert read_chunk(fast).records == records
        assert read_chunk(default).records == records

    def test_scratch_spills_use_level(self, aligned_dataset):
        """Superchunk spills compress at the configured scratch level."""
        scratch = MemoryStore()
        sort_dataset(aligned_dataset, MemoryStore(),
                     SortConfig(chunks_per_superchunk=3,
                                scratch_codec_level=1),
                     scratch_store=scratch)
        heavy = MemoryStore()
        sort_dataset(aligned_dataset, MemoryStore(),
                     SortConfig(chunks_per_superchunk=3,
                                scratch_codec_level=9),
                     scratch_store=heavy)
        key = next(k for k in scratch.keys() if "results" in k)
        assert len(scratch.get(key)) >= len(heavy.get(key))
        # Both decode fine: the chunk header still names plain gzip.
        from repro.agd.chunk import read_chunk

        assert len(read_chunk(scratch.get(key))) == \
            len(read_chunk(heavy.get(key)))

    def test_output_codec_level(self, aligned_dataset):
        light = MemoryStore()
        sort_dataset(aligned_dataset, light,
                     SortConfig(output_codec_level=1))
        default = MemoryStore()
        default_ds = sort_dataset(aligned_dataset, default, SortConfig())
        key = next(iter(sorted(default.keys())))
        assert light.get(key) != default.get(key)  # different level
        from repro.agd.chunk import read_chunk

        assert read_chunk(light.get(key)).records == \
            read_chunk(default.get(key)).records
        assert default_ds.manifest.sort_order == "location"


class TestPayloadBatching:
    def test_small_payloads_batch_by_count(self):
        from repro.dataflow.backends import ProcessBackend

        backend = ProcessBackend(workers=1, batch_size=4)
        batches = backend._make_batches([b"x"] * 10)
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_large_array_payloads_split(self):
        from repro.dataflow.backends import ProcessBackend

        backend = ProcessBackend(workers=1, batch_size=4,
                                 batch_bytes=1 << 16)
        big = np.zeros(1 << 15, dtype=np.int64)  # 256 KiB each
        batches = backend._make_batches([big, big, big])
        assert [len(b) for b in batches] == [1, 1, 1]

    def test_payload_nbytes_walks_containers(self):
        from repro.dataflow.backends import payload_nbytes

        arr = np.zeros(100, dtype=np.int64)
        assert payload_nbytes(arr) == 800
        assert payload_nbytes((b"abc", [arr, arr])) >= 1600 + 3


class TestDuplicateBlobPatch:
    @given(triple_lists, st.sets(st.integers(0, 39)))
    @settings(max_examples=25, deadline=None)
    def test_blob_patch_equals_object_rewrite(self, triples, raw_positions):
        from repro.agd.chunk import write_chunk
        from repro.align.result import FLAG_DUPLICATE

        results = [t[0] for t in triples]
        positions = sorted(p for p in raw_positions if p < len(results))
        blob = write_chunk(results, "results", first_ordinal=7)
        patched = columnar.mark_duplicates_blob(blob, positions)
        updated = [
            r.with_flag(FLAG_DUPLICATE) if i in positions else r
            for i, r in enumerate(results)
        ]
        assert patched == write_chunk(updated, "results", first_ordinal=7)


class TestColumnarFallback:
    def test_lowercase_bases_fall_back_not_crash(self):
        """Soft-masked (lowercase) bases: the scalar Counter keys raw
        bytes, the 5-column matrix cannot — call_variants must fall back
        to the reference path, not raise."""
        from repro.core.columnar import ColumnarFallback

        n = 30
        results = [
            AlignmentResult(flag=0, mapq=60, contig_index=0, position=i,
                            cigar=b"8M")
            for i in range(n)
        ]
        bases = [b"acgtacgt"] * n
        quals = [b"I" * 8] * n
        config = VarCallConfig(min_mapq=0, min_base_quality=0)
        with pytest.raises(ColumnarFallback):
            columnar.pileup_partial(results, bases, quals, config)
        scalar = dict(pileup_records(results, bases, quals, config))
        assert scalar  # the scalar reference handles the same input

    def test_call_variants_falls_back_end_to_end(self, reference,
                                                 monkeypatch):
        """If the arrays path raises ColumnarFallback mid-run,
        call_variants reruns the scalar path and still returns."""
        import repro.core.varcall as varcall_mod
        from repro.core.columnar import ColumnarFallback

        n = 20
        results = [
            AlignmentResult(flag=0, mapq=60, contig_index=0, position=i,
                            cigar=b"6M")
            for i in range(n)
        ]
        dataset = AGDDataset.create(
            "fallback",
            {"results": results, "bases": [b"ACGTAC"] * n,
             "qual": [b"IIIIII"] * n},
            MemoryStore(), chunk_size=5,
        )
        expected = call_variants(dataset, reference, vectorized=False)

        def boom(*args, **kwargs):
            raise ColumnarFallback("forced")

        monkeypatch.setattr(varcall_mod, "pileup_dataset_arrays", boom)
        assert call_variants(dataset, reference, vectorized=True) == expected

    def test_cigar_read_overrun_raises(self):
        """A non-last record whose CIGAR overruns its read must raise,
        not silently pile the next record's bases."""
        results = [
            AlignmentResult(flag=0, mapq=60, contig_index=0, position=0,
                            cigar=b"6M"),
            AlignmentResult(flag=0, mapq=60, contig_index=0, position=100,
                            cigar=b"4M"),
        ]
        bases = [b"ACGT", b"ACGT"]  # first read shorter than its 6M
        quals = [b"IIII", b"IIII"]
        config = VarCallConfig(min_mapq=0, min_base_quality=0)
        with pytest.raises(ValueError):
            columnar.pileup_partial(results, bases, quals, config)

    def test_sparse_wide_coverage_falls_back(self):
        """Reads at both ends of a huge contig: dense accumulation
        would allocate O(span); the guard falls back instead."""
        from repro.core.columnar import ColumnarFallback

        results = [
            AlignmentResult(flag=0, mapq=60, contig_index=0, position=0,
                            cigar=b"4M"),
            AlignmentResult(flag=0, mapq=60, contig_index=0,
                            position=200_000_000, cigar=b"4M"),
        ]
        bases = [b"ACGT", b"ACGT"]
        quals = [b"IIII", b"IIII"]
        config = VarCallConfig(min_mapq=0, min_base_quality=0)
        with pytest.raises(ColumnarFallback):
            columnar.pileup_partial(results, bases, quals, config)

    def test_auto_partitioning_only_on_shared_memory_workers(self):
        """Auto merge partitioning engages only on multi-worker backends
        sharing caller memory: serial streams, thread partitions, and a
        process pool (whole-row IPC payloads) stays streaming unless the
        caller opts in explicitly."""
        from repro.dataflow.backends import (
            ProcessBackend,
            SerialBackend,
            ThreadBackend,
        )

        config = SortConfig()
        assert config.resolve_merge_partitions(None) == 1
        serial = SerialBackend()
        assert config.resolve_merge_partitions(serial) == 1
        process = ProcessBackend(workers=2)  # pool never started
        assert config.resolve_merge_partitions(process) == 1
        explicit = SortConfig(merge_partitions=4)
        assert explicit.resolve_merge_partitions(process) == 4
        thread = ThreadBackend(workers=3)
        try:
            assert config.resolve_merge_partitions(thread) == 3
        finally:
            thread.shutdown()

    def test_metadata_sort_without_results_column(self):
        """Metadata-order sort of an unaligned dataset must key on the
        metadata column (historically row[1] keyed on bases), and the
        scalar and vectorized paths must agree byte for byte."""
        from repro.core.sort import verify_sorted

        n = 30
        metas = [f"read-{(7 * i) % n:03d}".encode() for i in range(n)]
        dataset = AGDDataset.create(
            "unaligned",
            {
                "metadata": metas,
                "bases": [b"TTTT"] * n,  # constant: cannot order rows
                "qual": [b"IIII"] * n,
            },
            MemoryStore(), chunk_size=8,
        )
        scalar_store = MemoryStore()
        sort_dataset(dataset, scalar_store,
                     SortConfig(order="metadata", vectorized=False))
        vector_store = MemoryStore()
        sorted_ds = sort_dataset(dataset, vector_store,
                                 SortConfig(order="metadata"))
        assert _store_blobs(vector_store) == _store_blobs(scalar_store)
        assert sorted_ds.read_column("metadata") == sorted(metas)
        assert verify_sorted(sorted_ds, order="metadata")

    def test_run_pipeline_respects_sort_config_vectorized(
            self, aligned_dataset, monkeypatch):
        """An explicit SortConfig(vectorized=False) survives
        run_pipeline's default vectorized=True."""
        import repro.core.pipelines as pipelines_mod
        from repro.core.pipelines import run_pipeline

        captured = {}
        original = pipelines_mod.build_sort_graph

        def spy(manifest, output_store, **kwargs):
            captured["config"] = kwargs.get("config")
            return original(manifest, output_store, **kwargs)

        monkeypatch.setattr(pipelines_mod, "build_sort_graph", spy)
        run_pipeline(
            aligned_dataset, stages=("sort",),
            sort_config=SortConfig(vectorized=False),
            backend="serial",
        )
        assert captured["config"].vectorized is False


class TestQueueTelemetry:
    def test_run_pipeline_records_queue_trace(self, aligned_dataset,
                                              reference):
        from repro.core.pipelines import run_pipeline

        outcome = run_pipeline(
            aligned_dataset,
            stages=("sort", "dupmark", "varcall"),
            reference=reference,
            backend="serial",
            queue_sample_interval=0.001,
        )
        trace = outcome.report.get("queue_trace")
        assert trace is not None
        assert trace["depths"], "no queues sampled"
        assert len(trace["times"]) >= 1
        for series in trace["depths"].values():
            assert len(series) == len(trace["times"])
        stages = outcome.report.get("stages", {})
        assert any(
            agg.get("queue_trace") for agg in stages.values()
        ), "per-stage queue traces missing from stage_report"
