"""Tests for the high-level pipelines API."""

from repro.core.pipelines import (
    align_dataset,
    align_standalone,
    build_bwa_aligner,
    build_snap_aligner,
    stage_fastq_shards,
)
from repro.core.subgraphs import AlignGraphConfig
from repro.storage.base import MemoryStore
from repro.storage.local import CountingStore


class TestAlignDataset:
    def test_appends_results_column(self, dataset, snap_aligner):
        outcome = align_dataset(
            dataset, snap_aligner,
            config=AlignGraphConfig(executor_threads=2),
        )
        assert "results" in dataset.columns
        assert outcome.total_reads == dataset.total_records
        assert outcome.chunks == dataset.num_chunks
        assert outcome.total_bases == sum(
            len(b) for b in dataset.read_column("bases")
        )
        assert outcome.bases_per_second > 0
        results = dataset.read_column("results")
        assert len(results) == dataset.total_records
        assert sum(r.is_aligned for r in results) >= 0.95 * len(results)

    def test_output_store_separation(self, dataset, snap_aligner):
        out = MemoryStore()
        align_dataset(
            dataset, snap_aligner, output_store=out,
            config=AlignGraphConfig(executor_threads=2),
        )
        # Results live in the other store; manifest not extended.
        assert "results" not in dataset.columns
        assert any(k.endswith(".results") for k in out.keys())

    def test_report_includes_queue_stats(self, dataset, snap_aligner):
        outcome = align_dataset(
            dataset, snap_aligner,
            config=AlignGraphConfig(executor_threads=2),
        )
        assert "queues" in outcome.report
        assert outcome.report["nodes"]["aligner"]["items_in"] == dataset.num_chunks

    def test_bwa_pipeline(self, dataset, bwa_aligner):
        outcome = align_dataset(
            dataset, bwa_aligner,
            config=AlignGraphConfig(executor_threads=2, subchunk_size=64),
        )
        assert outcome.total_reads == dataset.total_records
        results = dataset.read_column("results")
        assert sum(r.is_aligned for r in results) >= 0.95 * len(results)


class TestBuilders:
    def test_snap_builder(self, reference):
        aligner = build_snap_aligner(reference, seed_length=16)
        assert aligner.index.seed_length == 16

    def test_bwa_builder(self, reference):
        aligner = build_bwa_aligner(reference)
        assert aligner.reference is reference


class TestStandalone:
    def test_standalone_baseline(self, dataset, snap_aligner, reference):
        shard_store = CountingStore()
        staged = stage_fastq_shards(dataset, shard_store)
        assert staged > 0
        out_store = CountingStore()
        outcome = align_standalone(
            dataset.manifest, shard_store, out_store, snap_aligner,
            reference.manifest_entry(),
            config=AlignGraphConfig(executor_threads=2),
        )
        assert outcome.total_reads == dataset.total_records
        # The baseline arm must report a real base volume (its FASTQ
        # parser tallies it), so bases/s comparisons have a denominator.
        assert outcome.total_bases == sum(
            len(b) for b in dataset.read_column("bases")
        )
        assert outcome.bases_per_second > 0
        sam_keys = [k for k in out_store.backing.keys() if k.endswith(".sam")]
        assert len(sam_keys) == dataset.num_chunks

    def test_table1_byte_shape(self, dataset, snap_aligner, reference):
        """Table 1's I/O accounting: AGD reads slightly less (bases+qual
        columns vs gzip FASTQ) and writes an order of magnitude less
        (results column vs SAM rows)."""
        shard_store = CountingStore()
        fastq_bytes = stage_fastq_shards(dataset, shard_store)
        sam_store = CountingStore()
        align_standalone(
            dataset.manifest, shard_store, sam_store, snap_aligner,
            reference.manifest_entry(),
            config=AlignGraphConfig(executor_threads=2),
        )
        align_dataset(dataset, snap_aligner,
                      config=AlignGraphConfig(executor_threads=2))
        agd_read = dataset.column_bytes("bases") + dataset.column_bytes("qual")
        agd_written = dataset.column_bytes("results")
        assert fastq_bytes >= 0.9 * agd_read  # read volumes comparable
        assert sam_store.bytes_written > 8 * agd_written  # >>8x write gap


class TestPairedGraph:
    def test_paired_align_dataset_with_snap(self, reference):
        """AlignGraphConfig(paired=True) drives the PairedAlignerNode."""
        from repro.align.paired import InsertWindow, PairedAligner
        from repro.align.snap import SeedIndex, SnapAligner
        from repro.formats.converters import import_reads
        from repro.genome.synthetic import ReadSimulator

        sim = ReadSimulator(reference, paired=True, insert_size_mean=320,
                            insert_size_sd=20, seed=4242)
        reads, origins = sim.simulate(200)
        ds = import_reads(reads, "pgraph", MemoryStore(), chunk_size=50,
                          reference=reference.manifest_entry())
        snap = SnapAligner(SeedIndex(reference))
        paired = PairedAligner(snap, InsertWindow(220, 430))
        outcome = align_dataset(
            ds, paired,
            config=AlignGraphConfig(executor_threads=2, paired=True,
                                    subchunk_size=20),
        )
        assert outcome.total_reads == 200
        results = ds.read_column("results")
        proper = sum(1 for r in results if r.flag & 0x2)
        assert proper >= 0.85 * len(results)
        # Mates reference each other.
        for i in range(0, 20, 2):
            r1, r2 = results[i], results[i + 1]
            if r1.is_aligned and r2.is_aligned:
                assert r1.next_position == r2.position
