"""Property tests for the edit-distance kernels (Hamming, LV, banded)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.distance import (
    banded_alignment,
    hamming,
    landau_vishkin,
    verify_candidate,
)
from repro.align.result import cigar_operations

dna = st.binary(min_size=1, max_size=14).map(
    lambda b: bytes(b"ACGT"[x % 4] for x in b)
)


def dp_semiglobal(read: bytes, ref: bytes) -> int:
    """Oracle: min edits aligning all of ``read`` against a ``ref`` prefix."""
    m, n = len(read), len(ref)
    dp = [[0] * (n + 1) for _ in range(m + 1)]
    for i in range(1, m + 1):
        dp[i][0] = i
    for j in range(1, n + 1):
        dp[0][j] = j
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            dp[i][j] = min(
                dp[i - 1][j] + 1,
                dp[i][j - 1] + 1,
                dp[i - 1][j - 1] + (read[i - 1] != ref[j - 1]),
            )
    return min(dp[m])


class TestHamming:
    def test_basic(self):
        assert hamming(b"ACGT", b"ACGT") == 0
        assert hamming(b"ACGT", b"ACCT") == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming(b"A", b"AA")

    def test_empty(self):
        assert hamming(b"", b"") == 0


class TestLandauVishkin:
    def test_exact(self):
        assert landau_vishkin(b"ACGTACGT", b"ACGTACGTAA", 3) == 0

    def test_substitution(self):
        assert landau_vishkin(b"ACGTACGT", b"ACCTACGTAA", 3) == 1

    def test_read_insertion(self):
        assert landau_vishkin(b"ACGGTACGT", b"ACGTACGTAA", 3) == 1

    def test_read_deletion(self):
        assert landau_vishkin(b"ACTACGT", b"ACGTACGTAA", 3) == 1

    def test_exceeds_bound(self):
        assert landau_vishkin(b"AAAAAAA", b"CCCCCCCCC", 2) is None

    def test_empty_read(self):
        assert landau_vishkin(b"", b"ACGT", 2) == 0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            landau_vishkin(b"A", b"A", -1)

    def test_short_reference(self):
        # Read longer than reference: must pay for the overhang.
        assert landau_vishkin(b"ACGT", b"AC", 2) == 2
        assert landau_vishkin(b"ACGT", b"AC", 1) is None

    @given(dna, dna, st.integers(min_value=0, max_value=4))
    @settings(max_examples=200)
    def test_matches_dp_oracle(self, read, ref, k):
        truth = dp_semiglobal(read, ref)
        got = landau_vishkin(read, ref, k)
        if truth <= k:
            assert got == truth
        else:
            assert got is None


class TestBandedAlignment:
    def test_exact(self):
        distance, cigar, consumed = banded_alignment(b"ACGT", b"ACGTAA", 2)
        assert distance == 0 and cigar == b"4M" and consumed == 4

    def test_substitution_cigar(self):
        distance, cigar, _ = banded_alignment(b"ACGT", b"ACCTAA", 2)
        assert distance == 1 and cigar == b"4M"

    def test_deletion_cigar(self):
        distance, cigar, _ = banded_alignment(b"ACTACGT", b"ACGTACGT", 2)
        assert distance == 1
        assert b"D" in cigar

    def test_insertion_cigar(self):
        distance, cigar, _ = banded_alignment(b"ACGGTACGT", b"ACGTACGT", 2)
        assert distance == 1
        assert b"I" in cigar

    def test_none_when_out_of_band(self):
        assert banded_alignment(b"AAAA", b"TTTT", 1) is None

    def test_empty_read(self):
        assert banded_alignment(b"", b"ACGT", 2) == (0, b"", 0)

    @given(dna, dna, st.integers(min_value=0, max_value=4))
    @settings(max_examples=150)
    def test_distance_matches_oracle(self, read, ref, k):
        truth = dp_semiglobal(read, ref)
        outcome = banded_alignment(read, ref, k)
        if truth <= k:
            assert outcome is not None
            assert outcome[0] == truth
        else:
            assert outcome is None or outcome[0] > k

    @given(dna, dna, st.integers(min_value=0, max_value=4))
    @settings(max_examples=150)
    def test_cigar_consistent(self, read, ref, k):
        outcome = banded_alignment(read, ref, k)
        if outcome is None:
            return
        _, cigar, consumed = outcome
        ops = cigar_operations(cigar)
        read_span = sum(n for n, op in ops if op in "MIS=X")
        ref_span = sum(n for n, op in ops if op in "MDN=X")
        assert read_span == len(read)
        assert ref_span == consumed


class TestVerifyCandidate:
    def test_fast_path(self):
        assert verify_candidate(b"ACGT", b"ACGTAA", 2) == (0, b"4M")

    def test_substitutions_stay_m(self):
        distance, cigar = verify_candidate(b"ACGT", b"TCGTAA", 2)
        assert distance == 1 and cigar == b"4M"

    def test_indel_path(self):
        distance, cigar = verify_candidate(b"ACTACGTACGTA", b"ACGTACGTACGTAA", 3)
        assert distance == 1 and b"D" in cigar

    def test_rejection(self):
        assert verify_candidate(b"AAAAAAAA", b"CCCCCCCCCC", 3) is None

    @given(dna, st.integers(min_value=0, max_value=3))
    @settings(max_examples=100)
    def test_self_alignment_is_zero(self, read, k):
        assert verify_candidate(read, read + b"AAAA", k) == (
            0, f"{len(read)}M".encode()
        )
