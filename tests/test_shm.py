"""Zero-copy data plane tests.

BufferPool lifecycle (lease/release refcounting, exhaustion fallback,
segment hygiene), ShmRef payload estimation, and process-backend
equivalence: the shm and pickled paths must produce byte-identical
results, and no ``/dev/shm`` segment may survive a backend shutdown —
including one-shot result segments stranded by a dead worker.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.dataflow import shm
from repro.dataflow.backends import ProcessBackend, payload_nbytes
from repro.dataflow.shm import BufferPool, ShmRef

needs_shm = pytest.mark.skipif(
    not shm.shm_available(), reason="POSIX shared memory unavailable"
)

SIG_DTYPE = np.dtype([("tag", "u1"), ("c1", "<i8"), ("p1", "<i8")])


# ---------------------------------------------------------------------------
# Module-level task functions (picklable by reference).


def echo_task(shared, payload):
    return payload


def stats_task(shared, payload):
    arr, blob = payload
    return (arr * 2, blob[:8], int(arr.sum()))


class ShmTaskError(RuntimeError):
    pass


def explode_task(shared, payload):
    raise ShmTaskError("boom")


# ---------------------------------------------------------------------------
# payload_nbytes: ShmRef, dict keys, recursion cap, structured arrays.


class TestPayloadNbytes:
    def test_dict_keys_counted(self):
        key_heavy = {b"k" * 1000: b"v"}
        value_heavy = {b"k": b"v" * 1000}
        assert payload_nbytes(key_heavy) >= 1000
        assert payload_nbytes(value_heavy) >= 1000

    def test_shm_ref_counts_as_reference_not_data(self):
        small = ShmRef("seg", 0, 10)
        huge = ShmRef("seg", 0, 1 << 30)
        assert payload_nbytes(small) == payload_nbytes(huge)
        assert payload_nbytes(huge) < 1 << 10

    def test_structured_array(self):
        arr = np.zeros(100, dtype=SIG_DTYPE)
        assert payload_nbytes(arr) == arr.nbytes
        assert payload_nbytes((arr, arr)) >= 2 * arr.nbytes

    def test_deep_nesting_capped(self):
        payload = [b"x" * 10_000]
        for _ in range(200):
            payload = [payload]
        estimate = payload_nbytes(payload)  # must not recurse to the leaf
        assert isinstance(estimate, int)
        assert estimate < 10_000

    def test_deeply_nested_dicts_capped(self):
        payload = {"leaf": b"x" * 10_000}
        for _ in range(200):
            payload = {"wrap": payload}
        estimate = payload_nbytes(payload)
        assert isinstance(estimate, int)
        assert estimate < 10_000
        # Shallow nested dicts still count fully (keys and values).
        shallow = {"a": {b"k" * 500: b"v" * 500}}
        assert payload_nbytes(shallow) >= 1000

    def test_bases_column_counted(self):
        from repro.agd.compaction import BasesColumn

        column = BasesColumn(
            flat=np.frombuffer(b"ACGT" * 256, dtype=np.uint8).copy(),
            bounds=np.arange(0, 1025, 4, dtype=np.int64),
        )
        assert payload_nbytes(column) == column.nbytes
        assert payload_nbytes(column) >= 1024


# ---------------------------------------------------------------------------
# BufferPool lifecycle.


@needs_shm
class TestBufferPool:
    def test_bytes_roundtrip(self):
        with BufferPool(slab_bytes=1 << 16) as pool:
            data = bytes(range(256)) * 8
            ref = pool.put_bytes(data)
            assert ref is not None and ref.descr is None
            view = shm.resolve_payload(ref)
            assert view == data
            pool.release(ref)

    def test_array_roundtrip_zero_copy(self):
        with BufferPool(slab_bytes=1 << 20) as pool:
            arr = np.zeros(64, dtype=SIG_DTYPE)
            arr["c1"] = np.arange(64)
            ref = pool.put_array(arr)
            assert ref is not None and ref.shape == (64,)
            out = shm.resolve_payload(ref)
            assert out.dtype == SIG_DTYPE
            assert np.array_equal(out, arr)
            # A zero-copy view, not a copy.
            assert not out.flags.owndata
            pool.release(ref)

    def test_lease_refcount_recycles_slab(self):
        with BufferPool(slab_bytes=1 << 14, max_bytes=1 << 14) as pool:
            refs = [pool.put_bytes(b"a" * 4000) for _ in range(3)]
            assert all(r is not None for r in refs)
            assert pool.live_leases == 3
            # Full (12KB + alignment in a 16KB slab): next big put fails.
            assert pool.put_bytes(b"b" * 8000) is None
            pool.release_all(refs)
            assert pool.live_leases == 0
            # Space reclaimed without growing a new slab.
            assert pool.put_bytes(b"b" * 8000) is not None
            assert pool.slab_count == 1

    def test_exhaustion_returns_none_never_raises(self):
        with BufferPool(slab_bytes=1 << 12, max_bytes=1 << 12) as pool:
            held = pool.put_bytes(b"x" * 3000)
            assert held is not None
            for _ in range(10):
                assert pool.put_bytes(b"y" * 3000) is None

    def test_non_contiguous_array_declined(self):
        with BufferPool() as pool:
            arr = np.arange(10_000, dtype=np.int64)[::2]
            assert pool.put_array(arr) is None

    def test_concurrent_lease_release(self):
        pool = BufferPool(slab_bytes=1 << 16, max_bytes=1 << 20)
        errors: list = []

        def hammer(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                for _ in range(100):
                    data = bytes([seed]) * int(rng.integers(100, 2000))
                    ref = pool.put_bytes(data)
                    if ref is None:
                        continue  # transient exhaustion is legal
                    if shm.resolve_payload(ref) != data:
                        raise AssertionError("lease returned wrong bytes")
                    pool.release(ref)
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert pool.live_leases == 0
        prefix = pool.prefix
        pool.close()
        assert shm.list_segments(prefix) == []

    def test_close_unlinks_all_slabs(self):
        pool = BufferPool(slab_bytes=1 << 12, max_bytes=1 << 16)
        for _ in range(4):
            assert pool.put_bytes(b"z" * 3000) is not None
        prefix = pool.prefix
        assert len(shm.list_segments(prefix)) >= 1
        pool.close()
        assert shm.list_segments(prefix) == []
        pool.close()  # idempotent

    def test_close_sweeps_stale_result_segments(self):
        """A worker that died after exporting a result leaves a one-shot
        segment behind; the owning pool's close() must remove it."""
        from multiprocessing import shared_memory

        pool = BufferPool()
        stale = shared_memory.SharedMemory(
            create=True, size=128, name=f"{pool.prefix}-r999-0"
        )
        stale.buf[:4] = b"dead"
        stale.close()
        assert f"{pool.prefix}-r999-0" in shm.list_segments(pool.prefix)
        swept = pool.close()
        assert swept == 1
        assert shm.list_segments(pool.prefix) == []


# ---------------------------------------------------------------------------
# ProcessBackend: shm mode vs the pickled reference path.


def _run_both(payloads, task=stats_task, **shm_kwargs):
    shm_backend = ProcessBackend(workers=2, shm=True, **shm_kwargs)
    try:
        via_shm = shm_backend.run_chunk(task, payloads)
    finally:
        shm_backend.shutdown()
    pickled_backend = ProcessBackend(workers=2, shm=False)
    try:
        via_pickle = pickled_backend.run_chunk(task, payloads)
    finally:
        pickled_backend.shutdown()
    return via_shm, via_pickle


@needs_shm
class TestProcessBackendShm:
    def test_large_payloads_identical_to_pickled(self):
        arr = np.arange(50_000, dtype=np.int64)
        blob = b"ACGT" * 50_000
        payloads = [(arr + i, blob) for i in range(5)]
        via_shm, via_pickle = _run_both(payloads, shm_threshold=1024)
        for (sa, sb, sc), (pa, pb, pc) in zip(via_shm, via_pickle):
            assert np.array_equal(sa, pa)
            assert sb == pb
            assert sc == pc

    def test_exhausted_pool_falls_back_to_pickling(self):
        arr = np.arange(50_000, dtype=np.int64)
        blob = b"ACGT" * 50_000
        payloads = [(arr, blob)] * 6
        via_shm, via_pickle = _run_both(
            payloads, shm_threshold=1024,
            shm_slab_bytes=1 << 12, shm_max_bytes=1 << 12,
        )
        for (sa, sb, sc), (pa, pb, pc) in zip(via_shm, via_pickle):
            assert np.array_equal(sa, pa)
            assert sb == pb and sc == pc

    def test_no_segments_leak_after_shutdown(self):
        before = set(shm.list_segments("psna-"))
        backend = ProcessBackend(workers=2, shm=True, shm_threshold=1024)
        backend.run_chunk(
            echo_task, [np.arange(20_000, dtype=np.int64)] * 4
        )
        backend.shutdown()
        assert set(shm.list_segments("psna-")) == before

    def test_worker_error_releases_leases(self):
        backend = ProcessBackend(workers=2, shm=True, shm_threshold=1024)
        try:
            with pytest.raises(ShmTaskError):
                backend.run_chunk(explode_task, [b"x" * 100_000] * 3)
            assert backend._shm_pool is not None
            assert backend._shm_pool.live_leases == 0
            # Backend stays usable on the zero-copy path after an error.
            assert backend.run_chunk(echo_task, [b"y" * 100_000]) == \
                [b"y" * 100_000]
        finally:
            backend.shutdown()

    def test_stale_worker_segment_swept_on_shutdown(self):
        from multiprocessing import shared_memory

        backend = ProcessBackend(workers=2, shm=True)
        backend.start()
        prefix = backend._shm_pool.prefix
        stale = shared_memory.SharedMemory(
            create=True, size=64, name=f"{prefix}-r12345-7"
        )
        stale.close()
        backend.shutdown()
        assert shm.list_segments(prefix) == []

    def test_shm_explicit_false_stays_pickled(self):
        backend = ProcessBackend(workers=1, shm=False)
        try:
            backend.run_chunk(echo_task, [b"z" * 200_000])
            assert backend._shm_pool is None
        finally:
            backend.shutdown()


# ---------------------------------------------------------------------------
# End-to-end: the whole pipeline, shm vs pickled, byte-identical.


@needs_shm
class TestPipelineEquivalence:
    @pytest.mark.parametrize("stages", [
        ("align", "sort", "dupmark", "varcall"),
    ])
    def test_pipeline_outputs_byte_identical(
        self, reads, reference, snap_aligner, stages
    ):
        from repro.core.pipelines import run_pipeline
        from repro.core.sort import SortConfig
        from repro.formats.converters import import_reads
        from repro.storage.base import MemoryStore

        def fresh():
            return import_reads(
                reads, "shm-eq", MemoryStore(), chunk_size=100,
                reference=reference.manifest_entry(),
            )

        def run(shm_mode):
            return run_pipeline(
                fresh(), stages,
                aligner=snap_aligner, reference=reference,
                sort_config=SortConfig(chunks_per_superchunk=2),
                backend="process", workers=2, shm=shm_mode,
            )

        before = set(shm.list_segments("psna-"))
        with_shm = run(True)
        without = run(False)
        assert set(shm.list_segments("psna-")) == before
        for column in without.sorted_dataset.columns:
            assert (with_shm.sorted_dataset.read_column(column)
                    == without.sorted_dataset.read_column(column)), column
        assert with_shm.variants == without.variants
        assert (with_shm.dupmark_stats.duplicates_marked
                == without.dupmark_stats.duplicates_marked)
