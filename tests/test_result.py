"""Tests for AlignmentResult and CIGAR algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.align.result import (
    FLAG_DUPLICATE,
    FLAG_REVERSE,
    AlignmentResult,
    cigar_operations,
    cigar_read_span,
    cigar_reference_span,
    make_cigar,
)

cigar_ops = st.lists(
    st.tuples(st.integers(min_value=1, max_value=200),
              st.sampled_from(list("MIDNSHP=X"))),
    max_size=12,
)


class TestAlignmentResult:
    def test_defaults_unmapped(self):
        r = AlignmentResult()
        assert not r.is_aligned
        assert not r.is_reverse
        assert not r.is_duplicate

    def test_flags(self):
        r = AlignmentResult(flag=FLAG_REVERSE, contig_index=0, position=10)
        assert r.is_aligned and r.is_reverse

    def test_with_flag(self):
        r = AlignmentResult(flag=0, contig_index=0, position=1)
        dup = r.with_flag(FLAG_DUPLICATE)
        assert dup.is_duplicate and not r.is_duplicate
        cleared = dup.with_flag(FLAG_DUPLICATE, False)
        assert not cleared.is_duplicate

    def test_validation(self):
        with pytest.raises(ValueError):
            AlignmentResult(flag=-1)
        with pytest.raises(ValueError):
            AlignmentResult(mapq=300)
        with pytest.raises(ValueError):
            AlignmentResult(cigar=b"garbage")

    def test_serialization_roundtrip(self):
        r = AlignmentResult(
            flag=FLAG_REVERSE, mapq=37, contig_index=3, position=123456,
            next_contig_index=3, next_position=123800, template_length=450,
            edit_distance=2, cigar=b"50M1I50M",
        )
        assert AlignmentResult.from_bytes(r.to_bytes()) == r

    def test_serialized_size(self):
        r = AlignmentResult(cigar=b"10M")
        assert len(r.to_bytes()) == r.serialized_size()

    def test_truncated_rejected(self):
        r = AlignmentResult(contig_index=0, position=1, flag=0, cigar=b"5M")
        raw = r.to_bytes()
        with pytest.raises(ValueError):
            AlignmentResult.from_bytes(raw[:10])
        with pytest.raises(ValueError):
            AlignmentResult.from_bytes(raw[:-1])

    def test_location_key_ordering(self):
        a = AlignmentResult(flag=0, contig_index=0, position=5)
        b = AlignmentResult(flag=0, contig_index=0, position=9)
        c = AlignmentResult(flag=0, contig_index=1, position=0)
        unmapped = AlignmentResult()
        keys = [x.location_key() for x in (a, b, c, unmapped)]
        assert keys == sorted(keys)

    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=-1, max_value=10**12),
    )
    def test_roundtrip_property(self, flag, mapq, position):
        r = AlignmentResult(flag=flag, mapq=mapq, contig_index=0,
                            position=position)
        assert AlignmentResult.from_bytes(r.to_bytes()) == r


class TestCigar:
    def test_parse(self):
        assert cigar_operations(b"10M2I5D") == [(10, "M"), (2, "I"), (5, "D")]

    def test_empty(self):
        assert cigar_operations(b"") == []

    def test_malformed(self):
        for bad in (b"M", b"10", b"10Z", b"10M3", b"0M"):
            with pytest.raises(ValueError):
                cigar_operations(bad)

    def test_spans(self):
        cigar = b"5S90M2I3D1M"
        assert cigar_reference_span(cigar) == 90 + 3 + 1
        assert cigar_read_span(cigar) == 5 + 90 + 2 + 1

    def test_make_cigar_merges(self):
        assert make_cigar([(5, "M"), (5, "M"), (2, "I")]) == b"10M2I"

    def test_make_cigar_drops_zero(self):
        assert make_cigar([(0, "M"), (3, "D")]) == b"3D"

    @given(cigar_ops)
    def test_make_parse_roundtrip(self, ops):
        cigar = make_cigar(ops)
        parsed = cigar_operations(cigar)
        # Parsed form equals the run-length-merged input.
        merged = []
        for n, op in ops:
            if n == 0:
                continue
            if merged and merged[-1][1] == op:
                merged[-1] = (merged[-1][0] + n, op)
            else:
                merged.append((n, op))
        assert parsed == merged
