"""Concurrency tests for bounded dataflow queues (§4.5)."""

import threading
import time

import pytest

from repro.dataflow.errors import PipelineAborted, QueueClosed
from repro.dataflow.queues import Queue


class TestBasics:
    def test_fifo(self):
        q = Queue("q", 4)
        q.register_producer()
        for i in range(3):
            q.put(i)
        assert [q.get(), q.get(), q.get()] == [0, 1, 2]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Queue("q", 0)

    def test_len(self):
        q = Queue("q", 4)
        q.register_producer()
        q.put("a")
        assert len(q) == 1

    def test_put_blocks_when_full(self):
        q = Queue("q", 1)
        q.register_producer()
        q.put(1)
        with pytest.raises(TimeoutError):
            q.put(2, timeout=0.05)

    def test_get_blocks_when_empty(self):
        q = Queue("q", 1)
        q.register_producer()
        with pytest.raises(TimeoutError):
            q.get(timeout=0.05)

    def test_metrics(self):
        q = Queue("q", 4)
        q.register_producer()
        q.put(1)
        q.put(2)
        q.get()
        assert q.total_enqueued == 2
        assert q.max_depth == 2


class TestCloseSemantics:
    def test_drain_then_closed(self):
        q = Queue("q", 4)
        q.register_producer()
        q.put(1)
        q.producer_done()
        assert q.get() == 1
        with pytest.raises(QueueClosed):
            q.get()

    def test_multi_producer_close(self):
        q = Queue("q", 4)
        q.register_producer()
        q.register_producer()
        q.producer_done()
        assert not q.closed
        q.producer_done()
        assert q.closed

    def test_put_after_close_rejected(self):
        q = Queue("q", 4)
        q.register_producer()
        q.producer_done()
        with pytest.raises(QueueClosed):
            q.put(1)

    def test_producer_done_without_register(self):
        q = Queue("q", 4)
        with pytest.raises(RuntimeError):
            q.producer_done()

    def test_register_after_close_rejected(self):
        q = Queue("q", 4)
        q.close()
        with pytest.raises(RuntimeError):
            q.register_producer()

    def test_iteration_drains(self):
        q = Queue("q", 10)
        q.register_producer()
        for i in range(5):
            q.put(i)
        q.producer_done()
        assert list(q) == [0, 1, 2, 3, 4]

    def test_close_wakes_blocked_getter(self):
        q = Queue("q", 1)
        q.register_producer()
        seen = []

        def consumer():
            try:
                q.get()
            except QueueClosed:
                seen.append("closed")

        t = threading.Thread(target=consumer)
        t.start()
        time.sleep(0.05)
        q.producer_done()
        t.join(1.0)
        assert seen == ["closed"]


class TestAbort:
    def test_abort_wakes_everyone(self):
        q = Queue("q", 1)
        q.register_producer()
        q.put(1)  # full
        outcomes = []

        def blocked_putter():
            try:
                q.put(2)
            except PipelineAborted:
                outcomes.append("aborted")

        t = threading.Thread(target=blocked_putter)
        t.start()
        time.sleep(0.05)
        q.abort()
        t.join(1.0)
        assert outcomes == ["aborted"]

    def test_get_after_abort(self):
        q = Queue("q", 2)
        q.register_producer()
        q.abort()
        with pytest.raises(PipelineAborted):
            q.get()


class TestConcurrency:
    def test_many_producers_consumers(self):
        q = Queue("q", 8)
        n_producers, items_each = 4, 250
        for _ in range(n_producers):
            q.register_producer()
        received = []
        received_lock = threading.Lock()

        def producer(base):
            for i in range(items_each):
                q.put(base + i)
            q.producer_done()

        def consumer():
            while True:
                try:
                    item = q.get()
                except QueueClosed:
                    return
                with received_lock:
                    received.append(item)

        producers = [
            threading.Thread(target=producer, args=(p * 1000,))
            for p in range(n_producers)
        ]
        consumers = [threading.Thread(target=consumer) for _ in range(3)]
        for t in producers + consumers:
            t.start()
        for t in producers + consumers:
            t.join(10.0)
        assert len(received) == n_producers * items_each
        assert len(set(received)) == len(received)

    def test_bounded_depth_under_pressure(self):
        q = Queue("q", 3)
        q.register_producer()

        def producer():
            for i in range(100):
                q.put(i)
            q.producer_done()

        t = threading.Thread(target=producer)
        t.start()
        got = list(q)
        t.join(5.0)
        assert got == list(range(100))
        assert q.max_depth <= 3
