"""Distributed stage placement tests (§5.2 for the whole workload).

The acceptance properties of the placed refactor:

* a 2-server run (align+sort on A, dupmark+varcall on B) produces
  byte-identical sorted datasets, duplicate flags, and VCF rows to the
  single-``Session`` one-graph run — on every execution backend, over
  the in-process reference transport AND a real socket transport;
* every chunk is processed exactly once across servers, even under
  skewed per-chunk costs (self-balancing via the shared work edge);
* a killed worker's in-flight chunks are redelivered to a surviving
  replica and completed (at-least-once delivery, idempotent writes).
"""

from __future__ import annotations

import io
import time

import pytest

from repro.agd.manifest import ChunkEntry
from repro.cluster.broker import (
    Broker,
    BrokerError,
    BrokerServer,
    LocalBrokerClient,
    TcpBrokerClient,
)
from repro.cluster.placement import (
    WORK_EDGE,
    PlacementError,
    PlacementPlan,
    StagePlacement,
)
from repro.cluster.multiserver import WorkerKilled, run_placed_pipeline
from repro.cluster.wire import (
    decode_entry,
    decode_work_item,
    encode_entry,
    encode_work_item,
    entry_serializer,
    item_serializer,
    pack_frames,
    unpack_frames,
)
from repro.core.ops import ChunkWorkItem
from repro.core.pipelines import run_pipeline
from repro.core.sort import SortConfig, verify_sorted
from repro.dataflow.errors import PipelineAborted, QueueClosed
from repro.dataflow.queues import RemoteQueue
from repro.formats.converters import import_reads
from repro.formats.vcf import write_vcf
from repro.storage.base import MemoryStore

SORT_CONFIG = SortConfig(chunks_per_superchunk=2)


@pytest.fixture()
def fresh_dataset(reads, reference):
    def factory():
        return import_reads(
            reads, "pg", MemoryStore(), chunk_size=100,
            reference=reference.manifest_entry(),
        )
    return factory


@pytest.fixture(scope="module")
def single_session(reads, reference, snap_aligner):
    """The single-Session one-graph reference run (serial backend)."""
    dataset = import_reads(
        reads, "pg", MemoryStore(), chunk_size=100,
        reference=reference.manifest_entry(),
    )
    return run_pipeline(
        dataset,
        ("align", "sort", "dupmark", "varcall"),
        aligner=snap_aligner,
        reference=reference,
        sort_config=SORT_CONFIG,
        backend="serial",
    )


def vcf_bytes(variants, reference) -> bytes:
    buf = io.BytesIO()
    write_vcf(variants, buf, contigs=reference.manifest_entry())
    return buf.getvalue()


def assert_matches_single(placed, single, reference) -> None:
    assert verify_sorted(placed.sorted_dataset)
    assert placed.sorted_dataset.manifest.columns == \
        single.sorted_dataset.manifest.columns
    for column in single.sorted_dataset.columns:
        assert (placed.sorted_dataset.read_column(column)
                == single.sorted_dataset.read_column(column)), column
    # Chunk files byte-identical, duplicate flags included.
    for entry in single.sorted_dataset.manifest.chunks:
        for column in single.sorted_dataset.columns:
            key = entry.chunk_file(column)
            assert placed.sorted_dataset.store.get(key) == \
                single.sorted_dataset.store.get(key), key
    assert (placed.dupmark_stats.records,
            placed.dupmark_stats.duplicates_marked) == (
        single.dupmark_stats.records,
        single.dupmark_stats.duplicates_marked,
    )
    assert placed.dupmark_stats.duplicates_marked > 0
    assert vcf_bytes(placed.variants, reference) == \
        vcf_bytes(single.variants, reference)


class TestPlacementPlan:
    def test_parse_and_edges(self):
        plan = PlacementPlan.parse("A=align,sort;B=dupmark,varcall")
        assert plan.stages == ("align", "sort", "dupmark", "varcall")
        assert plan.groups == [("align", "sort"), ("dupmark", "varcall")]
        specs = plan.edges()
        assert [s.name for s in specs] == [WORK_EDGE, "sort->dupmark"]
        assert specs[0].producers == 1
        assert specs[1].producers == 1
        assert plan.ingress_edge("A") is None
        assert plan.egress_edge("A") == "sort->dupmark"
        assert plan.ingress_edge("B") == "sort->dupmark"
        assert plan.egress_edge("B") is None

    def test_replicated_align_edges_count_producers(self):
        plan = PlacementPlan.parse("A1=align;A2=align;B=sort,dupmark")
        assert plan.groups == [("align",), ("sort", "dupmark")]
        specs = plan.edges()
        assert specs[1].name == "align->sort"
        assert specs[1].producers == 2

    def test_round_trips_through_doc(self):
        plan = PlacementPlan.parse("A=align;B=sort,dupmark,varcall")
        again = PlacementPlan.from_doc(plan.to_doc())
        assert again.placements == plan.placements

    def test_rejects_overlapping_groups(self):
        with pytest.raises(PlacementError, match="overlap"):
            PlacementPlan.parse("A=align,sort;B=sort,dupmark")

    def test_rejects_out_of_order_groups(self):
        with pytest.raises(PlacementError, match="order"):
            PlacementPlan.parse("A=dupmark;B=align,sort")

    def test_rejects_replicated_stateful_group(self):
        with pytest.raises(PlacementError, match="replicated"):
            PlacementPlan.parse("A=sort,dupmark;B=sort,dupmark")

    def test_rejects_unknown_stage(self):
        with pytest.raises(PlacementError, match="unknown"):
            PlacementPlan.parse("A=align,polish")

    def test_rejects_duplicate_server_names(self):
        with pytest.raises(PlacementError, match="duplicate"):
            PlacementPlan([StagePlacement("A", ("align",)),
                           StagePlacement("A", ("align",))])

    def test_one_to_one_groups(self):
        assert StagePlacement("A", ("align",)).one_to_one
        assert StagePlacement("B", ("dupmark", "varcall")).one_to_one
        assert not StagePlacement("C", ("sort",)).one_to_one
        assert not StagePlacement("D", ("filter", "varcall")).one_to_one


class TestWireFormat:
    def test_entry_round_trip(self):
        entry = ChunkEntry("pg-3", 300, 100)
        assert decode_entry(encode_entry(entry)) == entry

    def test_frames_round_trip(self):
        blobs = [b"", b"abc", b"\x00" * 1000]
        assert unpack_frames(pack_frames(blobs)) == blobs

    def test_truncated_frames_rejected(self):
        from repro.cluster.wire import WireError

        packed = pack_frames([b"abcdef"])
        with pytest.raises(WireError):
            unpack_frames(packed[:-2])

    def test_work_item_round_trip_columns_and_results(
        self, aligned_dataset
    ):
        item = ChunkWorkItem(
            entry=aligned_dataset.manifest.chunks[0],
            columns={
                "bases": aligned_dataset.read_chunk("bases", 0).records,
                "qual": aligned_dataset.read_chunk("qual", 0).records,
            },
            results=aligned_dataset.read_chunk("results", 0).records,
        )
        back = decode_work_item(encode_work_item(item))
        assert back.entry == item.entry
        assert back.columns == item.columns
        assert back.results == item.results


class TestBroker:
    def test_pull_ack_lifecycle(self):
        broker = Broker()
        broker.create_edge("e", capacity=8, producers=1)
        producer = LocalBrokerClient(broker)
        consumer = LocalBrokerClient(broker)
        qp = RemoteQueue(producer, "e", entry_serializer())
        qc = RemoteQueue(consumer, "e", entry_serializer(),
                         ack_mode="manual")
        qp.register_producer()
        entries = [ChunkEntry(f"c-{i}", i * 10, 10) for i in range(4)]
        for entry in entries:
            qp.put(entry)
        qp.producer_done()
        got = [qc.get() for _ in range(4)]
        assert got == entries
        # Unacked deliveries keep the edge open...
        with pytest.raises(TimeoutError):
            qc.get(timeout=0.15)
        for entry in got:
            assert qc.ack_key(entry.path)
        # ...and the last ack closes it.
        with pytest.raises(QueueClosed):
            qc.get(timeout=2.0)

    def test_dropped_consumer_redelivers_unacked(self):
        broker = Broker()
        broker.create_edge("e", capacity=8, producers=1)
        producer = LocalBrokerClient(broker)
        dying = LocalBrokerClient(broker)
        survivor = LocalBrokerClient(broker)
        qp = RemoteQueue(producer, "e", entry_serializer())
        qd = RemoteQueue(dying, "e", entry_serializer(), ack_mode="manual")
        qs = RemoteQueue(survivor, "e", entry_serializer(),
                         ack_mode="manual")
        qp.register_producer()
        entries = [ChunkEntry(f"c-{i}", i * 10, 10) for i in range(5)]
        for entry in entries:
            qp.put(entry)
        qp.producer_done()
        taken = [qd.get(), qd.get()]
        dying.close()  # dies holding two unacked deliveries
        seen = []
        while True:
            try:
                entry = qs.get(timeout=2.0)
            except QueueClosed:
                break
            seen.append(entry)
            assert qs.ack_key(entry.path)
        assert sorted(e.path for e in seen) == sorted(e.path for e in entries)
        assert {e.path for e in taken} <= {e.path for e in seen}
        assert broker.stats()["e"]["total_redelivered"] == 2

    def test_dropped_producer_slot_released(self):
        broker = Broker()
        broker.create_edge("e", capacity=4, producers=2)
        done_producer = LocalBrokerClient(broker)
        dead_producer = LocalBrokerClient(broker)
        consumer = LocalBrokerClient(broker)
        q_done = RemoteQueue(done_producer, "e", entry_serializer())
        q_dead = RemoteQueue(dead_producer, "e", entry_serializer())
        qc = RemoteQueue(consumer, "e", entry_serializer())
        q_done.register_producer()
        q_dead.register_producer()
        q_done.put(ChunkEntry("c-0", 0, 10))
        q_done.producer_done()
        assert qc.get().path == "c-0"
        # One producer never finished: the edge must stay open...
        with pytest.raises(TimeoutError):
            qc.get(timeout=0.15)
        # ...until its death releases the slot.
        dead_producer.close()
        with pytest.raises(QueueClosed):
            qc.get(timeout=2.0)

    def test_abort_wakes_consumers(self):
        broker = Broker()
        broker.create_edge("e", capacity=4, producers=1)
        consumer = LocalBrokerClient(broker)
        qc = RemoteQueue(consumer, "e", entry_serializer())
        broker.abort()
        with pytest.raises(PipelineAborted):
            qc.get(timeout=2.0)

    def test_capacity_backpressure(self):
        broker = Broker()
        broker.create_edge("e", capacity=1, producers=1)
        producer = LocalBrokerClient(broker)
        qp = RemoteQueue(producer, "e", entry_serializer())
        qp.register_producer()
        qp.put(ChunkEntry("c-0", 0, 10))
        with pytest.raises(TimeoutError):
            qp.put(ChunkEntry("c-1", 10, 10), timeout=0.15)

    def test_unknown_edge_rejected(self):
        broker = Broker()
        with pytest.raises(BrokerError, match="no edge"):
            broker.pull("missing", consumer=1)

    def test_tcp_transport_round_trip(self):
        broker = Broker()
        broker.create_edge("e", capacity=4, producers=1)
        broker.plan_doc = {"hello": "world"}
        server = BrokerServer(broker).start()
        try:
            producer = TcpBrokerClient(*server.address)
            consumer = TcpBrokerClient(*server.address, wire_codec="none")
            assert producer.plan() == {"hello": "world"}
            qp = RemoteQueue(producer, "e", entry_serializer())
            qc = RemoteQueue(consumer, "e", entry_serializer())
            qp.register_producer()
            qp.put(ChunkEntry("c-0", 0, 10))
            qp.producer_done()
            assert qc.get(timeout=5.0).path == "c-0"
            with pytest.raises(QueueClosed):
                qc.get(timeout=5.0)
            assert consumer.stats()["e"]["total_published"] == 1
            producer.close()
            consumer.close()
        finally:
            server.stop()

    def test_tcp_gzip_wire_codec(self, aligned_dataset):
        """Payload bodies can ride the wire through the AGD codec layer."""
        broker = Broker()
        broker.create_edge("e", capacity=4, producers=1)
        server = BrokerServer(broker).start()
        try:
            producer = TcpBrokerClient(*server.address, wire_codec="gzip")
            consumer = TcpBrokerClient(*server.address, wire_codec="gzip")
            serializer = item_serializer()
            qp = RemoteQueue(producer, "e", serializer)
            qc = RemoteQueue(consumer, "e", serializer)
            qp.register_producer()
            item = ChunkWorkItem(
                entry=aligned_dataset.manifest.chunks[0],
                columns={"qual": aligned_dataset.read_chunk("qual",
                                                            0).records},
            )
            qp.put(item)
            qp.producer_done()
            back = qc.get(timeout=5.0)
            assert back.columns == item.columns
            producer.close()
            consumer.close()
        finally:
            server.stop()


class TestPlacedEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_two_server_split_matches_single_session(
        self, backend, fresh_dataset, snap_aligner, reference,
        single_session,
    ):
        """Align+sort on A, dupmark+varcall on B: byte-identical output."""
        plan = PlacementPlan.parse("A=align,sort;B=dupmark,varcall")
        placed = run_placed_pipeline(
            fresh_dataset(),
            plan,
            aligner=snap_aligner,
            reference=reference,
            sort_config=SORT_CONFIG,
            backend=backend,
            workers=2,
        )
        assert_matches_single(placed, single_session, reference)
        assert placed.server("A").chunks == 6
        assert placed.server("B").chunks == 6
        assert placed.total_redelivered == 0

    def test_three_way_split_with_replicated_align(
        self, fresh_dataset, snap_aligner, reference, single_session
    ):
        """Replicated align + sort server + dupmark/varcall server."""
        plan = PlacementPlan.parse(
            "A1=align;A2=align;S=sort;B=dupmark,varcall"
        )
        placed = run_placed_pipeline(
            fresh_dataset(),
            plan,
            aligner=snap_aligner,
            reference=reference,
            sort_config=SORT_CONFIG,
            backend="serial",
        )
        assert_matches_single(placed, single_session, reference)
        align_chunks = placed.server("A1").chunks + placed.server("A2").chunks
        assert align_chunks == 6  # every chunk aligned exactly once

    def test_tcp_transport_matches_single_session(
        self, fresh_dataset, snap_aligner, reference, single_session
    ):
        """Chunks cross a real socket; outputs stay byte-identical."""
        plan = PlacementPlan.parse("A=align,sort;B=dupmark,varcall")
        placed = run_placed_pipeline(
            fresh_dataset(),
            plan,
            aligner=snap_aligner,
            reference=reference,
            sort_config=SORT_CONFIG,
            backend="serial",
            transport="tcp",
        )
        assert_matches_single(placed, single_session, reference)
        assert placed.broker_stats["sort->dupmark"]["total_published"] == 6

    def test_single_server_degenerate_plan(
        self, fresh_dataset, snap_aligner, reference, single_session
    ):
        plan = PlacementPlan.single(("align", "sort", "dupmark", "varcall"))
        placed = run_placed_pipeline(
            fresh_dataset(),
            plan,
            aligner=snap_aligner,
            reference=reference,
            sort_config=SORT_CONFIG,
            backend="serial",
        )
        assert_matches_single(placed, single_session, reference)


class TestEdgeAutotuning:
    """Broker-edge capacity autotuning: the §4.5 heuristic, cluster-scale."""

    def test_suggest_grows_saturated_and_shrinks_idle(self):
        from repro.cluster.multiserver import suggest_edge_capacities
        from repro.cluster.placement import WORK_EDGE

        stats = {
            WORK_EDGE: {"capacity": 64, "max_depth": 64},  # by-design size
            "align->sort": {"capacity": 4, "max_depth": 4},
            "sort->dupmark": {"capacity": 16, "max_depth": 2},
            "dupmark->varcall": {"capacity": 4, "max_depth": 3},
        }
        tuned = suggest_edge_capacities(stats)
        assert WORK_EDGE not in tuned
        assert tuned["align->sort"] == 8  # saturated: grow
        assert tuned["sort->dupmark"] == 3  # idle: shrink to high-water + 1
        assert "dupmark->varcall" not in tuned  # right-sized

    def test_explicit_edge_capacities_applied(
        self, fresh_dataset, snap_aligner, reference, single_session
    ):
        plan = PlacementPlan.parse("A=align,sort;B=dupmark,varcall")
        placed = run_placed_pipeline(
            fresh_dataset(),
            plan,
            aligner=snap_aligner,
            reference=reference,
            sort_config=SORT_CONFIG,
            backend="serial",
            edge_capacities={"sort->dupmark": 9},
        )
        assert placed.broker_stats["sort->dupmark"]["capacity"] == 9
        assert_matches_single(placed, single_session, reference)

    def test_autotuned_run_matches_untuned_output(
        self, fresh_dataset, snap_aligner, reference, single_session
    ):
        plan = PlacementPlan.parse("A=align,sort;B=dupmark,varcall")
        placed = run_placed_pipeline(
            fresh_dataset(),
            plan,
            aligner=snap_aligner,
            reference=reference,
            sort_config=SORT_CONFIG,
            backend="serial",
            edge_capacity=2,  # deliberately shallow: probe should grow it
            autotune_edges=True,
        )
        assert isinstance(placed.autotuned_edges, dict)
        # Capacities the probe suggested were actually applied.
        for edge, capacity in placed.autotuned_edges.items():
            assert placed.broker_stats[edge]["capacity"] == capacity
        assert_matches_single(placed, single_session, reference)


class _SkewedAligner:
    """Delays every read so one server is much slower than the other."""

    def __init__(self, inner, delay: float):
        self._inner = inner
        self._delay = delay

    def align_read(self, bases):
        if self._delay:
            time.sleep(self._delay)
        return self._inner.align_read(bases)


class _DyingAligner:
    """Raises WorkerKilled after a fixed number of reads."""

    def __init__(self, inner, survive_reads: int):
        self._inner = inner
        self.remaining = survive_reads

    def align_read(self, bases):
        if self.remaining <= 0:
            raise WorkerKilled("simulated worker death")
        self.remaining -= 1
        return self._inner.align_read(bases)


class TestSelfBalancing:
    def test_skewed_chunk_costs_balance_via_work_queue(
        self, reads, reference, snap_aligner
    ):
        """A slow align server simply fetches fewer chunk names (§5.2):
        with shallow per-server queues, the shared work edge shifts
        chunks to the fast replica, and every chunk is still aligned
        exactly once."""
        from repro.core.subgraphs import AlignGraphConfig

        # Many small chunks + depth-1 queues: per-server prefetch stays
        # a handful, leaving the work edge something to balance (§4.5's
        # "shallow queues avoid stragglers").
        dataset = import_reads(
            reads, "skew", MemoryStore(), chunk_size=25,
            reference=reference.manifest_entry(),
        )
        num_chunks = dataset.num_chunks
        plan = PlacementPlan.parse("slow=align;fast=align")

        def factory(server):
            delay = 0.004 if server == "slow" else 0.0
            return _SkewedAligner(snap_aligner, delay)

        placed = run_placed_pipeline(
            dataset,
            plan,
            aligner_factory=factory,
            reference=reference,
            align_config=AlignGraphConfig(
                executor_threads=1, aligner_nodes=1, reader_nodes=1,
                parser_nodes=1, queue_depth=1,
            ),
            backend="serial",
        )
        slow = placed.server("slow").chunks
        fast = placed.server("fast").chunks
        assert slow + fast == num_chunks  # exactly once across servers
        assert fast > slow  # the dynamic queue shifted work to the fast one
        # Every chunk's results landed in the shared store.
        for entry in dataset.manifest.chunks:
            assert dataset.store.exists(entry.chunk_file("results"))

    def test_killed_worker_chunks_redelivered_and_completed(
        self, reads, snap_aligner, reference
    ):
        """A worker dying mid-chunk loses nothing: its unacked names are
        redelivered to the surviving replica and the run completes with
        byte-identical output.

        24 small chunks, not the usual 6: each worker's local pipeline
        eagerly prefetches ~7 chunk names, so with 6 chunks the
        survivor can hoard the whole edge before the dying worker
        aligns enough reads to die — death must not depend on winning
        that race.
        """
        def dataset24():
            return import_reads(
                reads, "pg24", MemoryStore(), chunk_size=25,
                reference=reference.manifest_entry(),
            )

        single = run_pipeline(
            dataset24(),
            ("align", "sort", "dupmark", "varcall"),
            aligner=snap_aligner,
            reference=reference,
            sort_config=SORT_CONFIG,
            backend="serial",
        )
        plan = PlacementPlan.parse(
            "dying=align;survivor=align;B=sort,dupmark,varcall"
        )

        def factory(server):
            if server == "dying":
                # Dies 5 reads into its second chunk: any schedule that
                # hands it even two of the 24 chunks kills it mid-work.
                return _DyingAligner(snap_aligner, survive_reads=30)
            return snap_aligner

        placed = run_placed_pipeline(
            dataset24(),
            plan,
            aligner_factory=factory,
            reference=reference,
            sort_config=SORT_CONFIG,
            backend="serial",
        )
        dying = placed.server("dying")
        survivor = placed.server("survivor")
        assert dying.killed
        assert not survivor.killed
        assert placed.total_redelivered > 0
        assert dying.chunks + survivor.chunks == 24  # exactly once
        assert_matches_single(placed, single, reference)

    def test_killed_worker_without_replica_fails_loudly(
        self, fresh_dataset, snap_aligner, reference
    ):
        """A dead server whose stage group has NO surviving replica
        cannot be healed by redelivery: the run must raise, not return
        silently partial results."""
        plan = PlacementPlan.parse("A=align;B=sort,dupmark")

        def factory(server):  # noqa: ARG001 - single align server
            return _DyingAligner(snap_aligner, survive_reads=150)

        with pytest.raises(Exception, match="worker death"):
            run_placed_pipeline(
                fresh_dataset(),
                plan,
                aligner_factory=factory,
                reference=reference,
                sort_config=SORT_CONFIG,
                backend="serial",
                session_timeout=60.0,
            )

    def test_non_kill_error_propagates(self, fresh_dataset, reference):
        class BrokenAligner:
            def align_read(self, bases):
                raise RuntimeError("index corrupted")

        plan = PlacementPlan.parse("A=align;B=sort,dupmark")
        with pytest.raises(Exception, match="index corrupted"):
            run_placed_pipeline(
                fresh_dataset(),
                plan,
                aligner=BrokenAligner(),
                reference=reference,
                sort_config=SORT_CONFIG,
                backend="serial",
                session_timeout=60.0,
            )


class TestPlacedFilter:
    def test_filter_stage_is_placeable(
        self, fresh_dataset, snap_aligner, reference
    ):
        from repro.core.filters import by_min_mapq, filter_dataset

        dataset = fresh_dataset()
        single = run_pipeline(
            fresh_dataset(),
            ("align", "sort", "dupmark", "filter", "varcall"),
            aligner=snap_aligner,
            reference=reference,
            sort_config=SORT_CONFIG,
            filter_predicate=by_min_mapq(30),
            backend="serial",
        )
        plan = PlacementPlan.parse("A=align,sort;B=dupmark,filter,varcall")
        placed = run_placed_pipeline(
            dataset,
            plan,
            aligner=snap_aligner,
            reference=reference,
            sort_config=SORT_CONFIG,
            filter_predicate=by_min_mapq(30),
            backend="serial",
        )
        assert placed.filter_stats.kept == single.filter_stats.kept
        assert placed.filtered_dataset.manifest.columns == \
            single.filtered_dataset.manifest.columns
        for column in single.filtered_dataset.columns:
            assert (placed.filtered_dataset.read_column(column)
                    == single.filtered_dataset.read_column(column)), column
        assert vcf_bytes(placed.variants, reference) == \
            vcf_bytes(single.variants, reference)
        # And the streamed filter matches the eager function exactly.
        eager = filter_dataset(single.sorted_dataset, by_min_mapq(30),
                               MemoryStore())
        assert [e.path for e in placed.filtered_dataset.manifest.chunks] \
            == [e.path for e in eager.manifest.chunks]
