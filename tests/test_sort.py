"""Tests for external merge sort with superchunks (§4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agd.dataset import AGDDataset
from repro.align.result import AlignmentResult
from repro.core.sort import SortConfig, sort_dataset, sort_key_for, verify_sorted
from repro.storage.base import MemoryStore


def make_aligned_dataset(positions, chunk_size=4):
    """A tiny aligned dataset with given (contig, position) results."""
    n = len(positions)
    results = [
        AlignmentResult(flag=0, contig_index=c, position=p, cigar=b"4M")
        if p >= 0 else AlignmentResult()
        for c, p in positions
    ]
    return AGDDataset.create(
        "mini",
        {
            "bases": [b"ACGT"] * n,
            "qual": [b"IIII"] * n,
            "metadata": [f"r{i:05d}".encode() for i in range(n)],
            "results": results,
        },
        MemoryStore(),
        chunk_size=chunk_size,
    )


class TestSortKey:
    def test_location_key(self):
        key = sort_key_for("location")
        row_a = (AlignmentResult(flag=0, contig_index=0, position=5), b"r1")
        row_b = (AlignmentResult(flag=0, contig_index=1, position=0), b"r0")
        assert key(row_a) < key(row_b)

    def test_unmapped_sorts_last(self):
        key = sort_key_for("location")
        mapped = (AlignmentResult(flag=0, contig_index=5, position=10**9),)
        unmapped = (AlignmentResult(),)
        assert key(mapped) < key(unmapped)

    def test_metadata_key(self):
        key = sort_key_for("metadata")
        assert key((None, b"a")) < key((None, b"b"))

    def test_unknown_order(self):
        with pytest.raises(ValueError):
            sort_key_for("banana")


class TestSortDataset:
    def test_sorts_by_location(self):
        positions = [(0, 50), (0, 3), (1, 2), (0, 99), (1, 0), (0, 0),
                     (0, 75), (1, 44), (0, 12), (0, 61)]
        ds = make_aligned_dataset(positions, chunk_size=3)
        out = sort_dataset(ds, MemoryStore(),
                           SortConfig(chunks_per_superchunk=2))
        assert verify_sorted(out)
        assert out.total_records == 10
        assert out.manifest.sort_order == "location"

    def test_rows_stay_consistent(self):
        """Sorting must move whole rows: metadata follows its result."""
        positions = [(0, p) for p in (9, 1, 5, 3, 7, 0, 8, 2, 6, 4)]
        ds = make_aligned_dataset(positions, chunk_size=3)
        out = sort_dataset(ds, MemoryStore(),
                           SortConfig(chunks_per_superchunk=2))
        results = out.read_column("results")
        metas = out.read_column("metadata")
        original_pairing = {
            f"r{i:05d}".encode(): p for i, (_c, p) in enumerate(positions)
        }
        for result, meta in zip(results, metas):
            assert original_pairing[meta] == result.position

    def test_unmapped_at_end(self):
        positions = [(0, 5), (-1, -1), (0, 1), (-1, -1), (0, 3)]
        ds = make_aligned_dataset(positions, chunk_size=2)
        out = sort_dataset(ds, MemoryStore(),
                           SortConfig(chunks_per_superchunk=2))
        results = out.read_column("results")
        assert [r.is_aligned for r in results] == [True] * 3 + [False] * 2

    def test_sort_by_metadata(self):
        positions = [(0, i) for i in range(8)]
        ds = make_aligned_dataset(positions, chunk_size=3)
        # Shuffle metadata by re-creating with reversed names.
        out = sort_dataset(ds, MemoryStore(),
                           SortConfig(order="metadata",
                                      chunks_per_superchunk=2))
        metas = out.read_column("metadata")
        assert metas == sorted(metas)
        assert verify_sorted(out, "metadata")

    def test_location_sort_requires_results(self, dataset):
        with pytest.raises(ValueError):
            sort_dataset(dataset, MemoryStore(), SortConfig())

    def test_metadata_sort_works_without_results(self, dataset):
        out = sort_dataset(dataset, MemoryStore(),
                           SortConfig(order="metadata"))
        assert verify_sorted(out, "metadata")

    def test_output_chunk_size(self):
        positions = [(0, i) for i in range(10)]
        ds = make_aligned_dataset(positions, chunk_size=4)
        out = sort_dataset(
            ds, MemoryStore(),
            SortConfig(chunks_per_superchunk=2, output_chunk_size=3),
        )
        counts = [e.record_count for e in out.manifest.chunks]
        assert counts == [3, 3, 3, 1]

    def test_single_superchunk(self):
        positions = [(0, i) for i in (3, 1, 2)]
        ds = make_aligned_dataset(positions, chunk_size=10)
        out = sort_dataset(ds, MemoryStore(),
                           SortConfig(chunks_per_superchunk=100))
        assert verify_sorted(out)

    def test_invalid_config(self):
        positions = [(0, 1)]
        ds = make_aligned_dataset(positions)
        with pytest.raises(ValueError):
            sort_dataset(ds, MemoryStore(),
                         SortConfig(chunks_per_superchunk=0))

    def test_against_sorted_oracle(self, aligned_dataset):
        out = sort_dataset(aligned_dataset, MemoryStore(),
                           SortConfig(chunks_per_superchunk=3))
        got = [r.location_key() for r in out.read_column("results")]
        expected = sorted(
            r.location_key() for r in aligned_dataset.read_column("results")
        )
        assert got == expected

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=3),
                      st.integers(min_value=0, max_value=1000)),
            min_size=1, max_size=40,
        ),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_sort_property(self, positions, chunk_size, per_super):
        ds = make_aligned_dataset(positions, chunk_size=chunk_size)
        out = sort_dataset(
            ds, MemoryStore(),
            SortConfig(chunks_per_superchunk=per_super),
        )
        assert out.total_records == len(positions)
        got = [
            (r.contig_index, r.position) for r in out.read_column("results")
        ]
        assert got == sorted(got)
