"""Tests for recyclable object/buffer pools (§4.5 zero-copy architecture)."""

import threading

import pytest

from repro.dataflow.pools import Buffer, BufferPool, ObjectPool


class TestObjectPool:
    def test_acquire_release(self):
        pool = ObjectPool(factory=list, capacity=2)
        a = pool.acquire()
        b = pool.acquire()
        assert pool.in_use == 2
        pool.release(a)
        assert pool.in_use == 1
        pool.release(b)
        assert pool.in_use == 0

    def test_objects_recycled(self):
        pool = ObjectPool(factory=list, capacity=1)
        a = pool.acquire()
        pool.release(a)
        b = pool.acquire()
        assert a is b  # same object handed back
        assert pool.created == 1

    def test_exhaustion_blocks(self):
        pool = ObjectPool(factory=list, capacity=1)
        pool.acquire()
        with pytest.raises(TimeoutError):
            pool.acquire(timeout=0.05)

    def test_release_unblocks(self):
        pool = ObjectPool(factory=list, capacity=1)
        obj = pool.acquire()
        acquired = []

        def waiter():
            acquired.append(pool.acquire(timeout=2.0))

        t = threading.Thread(target=waiter)
        t.start()
        pool.release(obj)
        t.join(3.0)
        assert acquired == [obj]

    def test_release_without_acquire(self):
        pool = ObjectPool(factory=list, capacity=1)
        with pytest.raises(RuntimeError):
            pool.release([])

    def test_reset_hook(self):
        pool = ObjectPool(factory=list, capacity=1,
                          reset=lambda lst: lst.clear())
        obj = pool.acquire()
        obj.extend([1, 2, 3])
        pool.release(obj)
        assert pool.acquire() == []

    def test_peak_tracking(self):
        pool = ObjectPool(factory=list, capacity=4)
        objs = [pool.acquire() for _ in range(3)]
        for o in objs:
            pool.release(o)
        assert pool.peak_in_use == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ObjectPool(factory=list, capacity=0)

    def test_memory_bound_invariant(self):
        """The §4.5 claim: in-flight objects never exceed the pool size."""
        pool = ObjectPool(factory=list, capacity=3)
        errors = []

        def worker():
            for _ in range(200):
                try:
                    obj = pool.acquire(timeout=5.0)
                    if pool.peak_in_use > 3:
                        errors.append("exceeded capacity")
                    pool.release(obj)
                except TimeoutError:
                    errors.append("timeout")

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(20.0)
        assert not errors
        assert pool.created <= 3


class TestBuffer:
    def test_set_and_bytes(self):
        buf = Buffer()
        buf.set(b"hello")
        assert bytes(buf) == b"hello"
        assert len(buf) == 5

    def test_clear_keeps_capacity(self):
        buf = Buffer()
        buf.set(b"x" * 1000)
        buf.clear()
        assert len(buf) == 0

    def test_release_without_pool_is_noop(self):
        Buffer().release()


class TestBufferPool:
    def test_buffers_cleared_on_release(self):
        pool = BufferPool(capacity=1)
        buf = pool.acquire()
        buf.set(b"dirty data")
        pool.release(buf)
        recycled = pool.acquire()
        assert len(recycled) == 0

    def test_release_via_buffer(self):
        pool = BufferPool(capacity=1)
        buf = pool.acquire()
        buf.release()
        assert pool.in_use == 0
