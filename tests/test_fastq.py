"""Tests for FASTQ parsing/writing, including the '@-in-quality' hazard."""

import gzip
import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.formats.fastq import (
    FastqFormatError,
    fastq_bytes,
    format_fastq_record,
    parse_fastq,
    read_fastq,
    write_fastq,
)
from repro.genome.reads import ReadRecord

reads_strategy = st.lists(
    st.tuples(
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1, max_size=30,
        ),
        st.binary(min_size=1, max_size=60).map(
            lambda b: bytes(b"ACGTN"[x % 5] for x in b)
        ),
    ).map(
        lambda t: ReadRecord(t[0].encode(), t[1], b"I" * len(t[1]))
    ),
    max_size=20,
)


class TestParse:
    def test_basic(self):
        blob = b"@r1\nACGT\n+\nIIII\n@r2\nGG\n+\nII\n"
        reads = list(parse_fastq(io.BytesIO(blob)))
        assert len(reads) == 2
        assert reads[0] == ReadRecord(b"r1", b"ACGT", b"IIII")

    def test_at_sign_in_quality(self):
        """'@' is quality score 31 — a delimiter-scanning parser breaks."""
        blob = b"@r1\nACGT\n+\n@@@@\n@r2\nGG\n+\n@I\n"
        reads = list(parse_fastq(io.BytesIO(blob)))
        assert len(reads) == 2
        assert reads[0].qualities == b"@@@@"

    def test_plus_line_with_repeat(self):
        blob = b"@r1\nACGT\n+r1\nIIII\n"
        reads = list(parse_fastq(io.BytesIO(blob)))
        assert reads[0].name == "r1"

    def test_metadata_preserved(self):
        blob = b"@read.1 extra info here\nAC\n+\nII\n"
        reads = list(parse_fastq(io.BytesIO(blob)))
        assert reads[0].metadata == b"read.1 extra info here"
        assert reads[0].name == "read.1"

    def test_empty_stream(self):
        assert list(parse_fastq(io.BytesIO(b""))) == []

    def test_trailing_blank_lines(self):
        blob = b"@r\nAC\n+\nII\n\n\n"
        assert len(list(parse_fastq(io.BytesIO(blob)))) == 1

    def test_bad_header(self):
        with pytest.raises(FastqFormatError):
            list(parse_fastq(io.BytesIO(b"r1\nACGT\n+\nIIII\n")))

    def test_bad_separator(self):
        with pytest.raises(FastqFormatError):
            list(parse_fastq(io.BytesIO(b"@r1\nACGT\nIIII\n@r2\n")))

    def test_length_mismatch(self):
        with pytest.raises(FastqFormatError):
            list(parse_fastq(io.BytesIO(b"@r1\nACGT\n+\nII\n")))

    def test_truncated_record(self):
        with pytest.raises(FastqFormatError):
            list(parse_fastq(io.BytesIO(b"@r1\nACGT\n")))


class TestWrite:
    def test_format_record(self):
        read = ReadRecord(b"r1", b"ACGT", b"IIII")
        assert format_fastq_record(read) == b"@r1\nACGT\n+\nIIII\n"

    def test_file_roundtrip(self, tmp_path):
        reads = [ReadRecord(f"r{i}".encode(), b"ACGT", b"IIII") for i in range(5)]
        path = tmp_path / "x.fastq"
        assert write_fastq(reads, path) == 5
        assert list(read_fastq(path)) == reads

    def test_gzip_roundtrip(self, tmp_path):
        reads = [ReadRecord(b"r", b"ACGT", b"IIII")]
        path = tmp_path / "x.fastq.gz"
        write_fastq(reads, path, compress=True)
        # File must really be gzip.
        with open(path, "rb") as fh:
            assert fh.read(2) == b"\x1f\x8b"
        assert list(read_fastq(path)) == reads

    def test_gzip_detection_without_extension(self, tmp_path):
        reads = [ReadRecord(b"r", b"AC", b"II")]
        path = tmp_path / "mystery"
        path.write_bytes(gzip.compress(fastq_bytes(reads)))
        assert list(read_fastq(path)) == reads

    @given(reads_strategy)
    def test_roundtrip_property(self, reads):
        blob = fastq_bytes(reads)
        assert list(parse_fastq(io.BytesIO(blob))) == reads
