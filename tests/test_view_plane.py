"""Zero-copy decode plane tests (view-based codecs, per-edge encoding).

The acceptance properties of the end-to-end view plane:

* chunk decoding over a ``memoryview`` + the identity codec is genuinely
  zero-copy — the data block, view-decoded text records, and the bases
  flat array all alias the input buffer — and every escape hatch
  (``materialize_records``, ``BasesColumn.materialize``, ``PooledView
  .materialize``) produces owned storage byte-identical to the views;
* view aliasing is *safe*: delivered views are read-only, a consumer
  mutating (or dying while holding) a view never corrupts the segment a
  redelivery reads, and no ``/dev/shm`` segment outlives the server;
* the per-edge codec negotiation picks raw level-0 frames exactly for
  shm-verified clients and keeps gzip level 1 everywhere else, with
  byte-identical decoded items either way;
* the broker's decode counters prove the property the bench gates on:
  a shm-verified edge decodes with ``decode_copies == 0``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.agd.chunk import (
    materialize_records,
    read_chunk,
    read_chunk_data,
    write_chunk,
)
from repro.agd.compaction import BasesColumn, unpack_column_flat
from repro.agd.manifest import ChunkEntry
from repro.agd.records import get_record_codec
from repro.align.result import AlignmentResult
from repro.cluster.broker import Broker, BrokerServer, TcpBrokerClient
from repro.cluster.wire import (
    EDGE_CODEC_LEVEL,
    RAW_EDGE_CODEC_LEVEL,
    decode_work_item_frames,
    edge_item_serializer,
    encode_work_item_frames,
)
from repro.core.columnar import _gather_kept, read_bases_column
from repro.core.ops import ChunkWorkItem
from repro.dataflow import shm
from repro.dataflow.backends import payload_nbytes
from repro.dataflow.queues import PUBLISH_OK, PULL_OK, RemoteQueue

needs_shm = pytest.mark.skipif(
    not shm.shm_available(), reason="POSIX shared memory unavailable"
)

READS = [b"ACGTACGTAC", b"GGGTTTAAAC", b"ACGT", b"TTTTTTTTTTTTTTTT"]
QUALS = [b"IIIIIIIIII", b"FFFFFFFFFF", b"IIII", b"FFFFFFFFFFFFFFFF"]


def _drain_pull(client, edge, deadline=10.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        status, tag, key, payload = client.pull(edge, timeout=0.2)
        if status == PULL_OK:
            return tag, key, payload
    raise TimeoutError(f"no delivery on {edge!r} within {deadline}s")


def _wait_for(predicate, deadline=10.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.02)
    return False


# ------------------------------------------------- chunk-level view decode


class TestChunkViewDecode:
    def test_none_codec_memoryview_data_block_aliases_blob(self):
        blob = write_chunk(QUALS, "text", codec="none")
        view = memoryview(blob)
        header, index, data = read_chunk_data(view)
        assert isinstance(data, memoryview)
        # Zero-copy: the data block is a window into the input buffer.
        assert data.obj is blob
        assert bytes(data) == b"".join(QUALS)

    def test_gzip_codec_still_decodes_from_views(self):
        blob = write_chunk(QUALS, "text")  # default gzip codec
        header, index, data = read_chunk_data(memoryview(blob))
        assert isinstance(data, bytes)  # decompression must materialize
        assert read_chunk(memoryview(blob)).records == QUALS

    def test_text_decode_views_alias_and_materialize(self):
        blob = write_chunk(QUALS, "text", codec="none")
        chunk = read_chunk(memoryview(blob), views=True)
        assert all(isinstance(r, memoryview) for r in chunk.records)
        assert [bytes(r) for r in chunk.records] == QUALS
        owned = materialize_records(chunk.records)
        assert owned == QUALS
        assert all(isinstance(r, bytes) for r in owned)
        # Non-view records pass through materialize_records untouched.
        assert materialize_records(owned) == owned

    def test_default_decode_of_memoryview_owns_records(self):
        blob = write_chunk(QUALS, "text", codec="none")
        records = read_chunk(memoryview(blob)).records
        assert records == QUALS
        assert all(isinstance(r, bytes) for r in records)

    def test_results_decode_from_view_owns_storage(self):
        results = [
            AlignmentResult(flag=0, mapq=60, contig_index=0, position=i,
                            cigar=b"10M")
            for i in range(4)
        ]
        blob = write_chunk(results, "results", codec="none")
        decoded = read_chunk(memoryview(blob)).records
        assert decoded == results
        assert all(isinstance(r.cigar, bytes) for r in decoded)


class TestBasesColumnViews:
    def _column(self) -> BasesColumn:
        blob = write_chunk(READS, "bases", codec="none")
        return read_bases_column(blob)

    def test_unpack_column_flat_round_trips(self):
        column = self._column()
        assert len(column) == len(READS)
        assert column.to_list() == READS

    def test_view_is_zero_copy_window(self):
        column = self._column()
        for i, read in enumerate(READS):
            window = column.view(i)
            assert isinstance(window, memoryview)
            assert bytes(window) == read
        with pytest.raises(IndexError):
            column.view(len(READS))

    def test_materialize_returns_owning_copy(self):
        column = self._column()
        aliased = BasesColumn(flat=column.flat[:], bounds=column.bounds)
        assert not aliased.flat.flags.owndata
        owned = aliased.materialize()
        assert owned.flat.flags.owndata and owned.flat.flags.writeable
        assert owned == column
        # Already-owning columns come back as-is (no needless copy).
        assert owned.materialize() is owned

    def test_gather_kept_matches_list_path(self):
        column = self._column()
        idx = np.array([3, 0, 2], dtype=np.int64)
        flat_col, lens_col = _gather_kept(column, idx)
        flat_lst, lens_lst = _gather_kept(list(READS), idx)
        assert np.array_equal(lens_col, lens_lst)
        assert np.array_equal(flat_col, flat_lst)
        assert flat_col.tobytes() == READS[3] + READS[0] + READS[2]


# ----------------------------------------------------- pool view leases


@needs_shm
class TestBufferPoolViewRef:
    def test_view_ref_is_readonly_and_guards_lease(self):
        with shm.BufferPool(slab_bytes=1 << 16, max_bytes=1 << 20) as pool:
            payload = os.urandom(4096)
            ref = pool.put_bytes(payload)
            assert ref is not None
            view = pool.view_ref(ref)
            assert view is not None
            assert view.nbytes == len(payload)
            assert bytes(view.view) == payload
            with pytest.raises(TypeError):
                view.view[0] = 0  # delivered views are read-only
            assert view.materialize() == payload
            # The guard lease keeps the payload alive past its own
            # release; dropping the view frees the last lease.
            pool.release(ref)
            assert pool.live_leases == 1
            assert view.release()
            assert pool.live_leases == 0

    def test_view_ref_after_release_returns_none(self):
        with shm.BufferPool(slab_bytes=1 << 16, max_bytes=1 << 20) as pool:
            ref = pool.put_bytes(b"x" * 128)
            pool.release(ref)
            assert pool.view_ref(ref) is None

    def test_view_ref_spilled_falls_back_to_none(self, tmp_path):
        pool = shm.BufferPool(
            slab_bytes=1 << 16, max_bytes=1 << 20,
            spill_dir=str(tmp_path), spill_watermark=0,
        )
        try:
            name = f"{pool.prefix}-adoptee"
            data = os.urandom(2048)
            assert shm.create_segment(name, data)
            ref = pool.adopt_segment(name, 0, len(data))
            assert ref is not None
            # Watermark 0 spills every adoption to disk: no mappable
            # segment exists, so the view path must decline...
            assert pool.view_ref(ref) is None
            # ...and the copy path still serves the bytes.
            assert pool.read_ref(ref) == data
        finally:
            pool.close()


# ------------------------------------------------ per-edge codec choice


class TestEdgeCodecNegotiation:
    def _item(self) -> ChunkWorkItem:
        entry = ChunkEntry("c0", 0, len(READS))
        item = ChunkWorkItem(entry=entry)
        item.columns["bases"] = list(READS)
        item.columns["qual"] = list(QUALS)
        item.results = [
            AlignmentResult(flag=0, mapq=60, contig_index=0, position=i,
                            cigar=b"10M")
            for i in range(len(READS))
        ]
        return item

    def test_raw_frames_decode_identically_to_gzip_frames(self):
        item = self._item()
        raw = encode_work_item_frames(item, RAW_EDGE_CODEC_LEVEL)
        gz = encode_work_item_frames(item, EDGE_CODEC_LEVEL)
        for frames in (raw, gz):
            got = decode_work_item_frames(frames)
            assert got.entry == item.entry
            assert got.columns["bases"] == READS
            assert got.columns["qual"] == QUALS
            assert got.results == item.results

    def test_views_decode_feeds_bases_column(self):
        item = self._item()
        frames = [
            memoryview(f)
            for f in encode_work_item_frames(item, RAW_EDGE_CODEC_LEVEL)
        ]
        got = decode_work_item_frames(frames, views=True)
        bases = got.columns["bases"]
        assert isinstance(bases, BasesColumn)
        assert bases.to_list() == READS
        # Text/results follow the record-codec policy: owned storage.
        assert got.columns["qual"] == QUALS
        assert all(isinstance(r, bytes) for r in got.columns["qual"])
        assert got.results == item.results

    def test_negotiation_keys_on_shm_handshake(self):
        class _ShmClient:
            shm_active = True

        class _TcpClient:
            shm_active = False

        item = self._item()
        raw_frames = edge_item_serializer(_ShmClient()).encode_frames(item)
        gz_frames = edge_item_serializer(_TcpClient()).encode_frames(item)
        # Raw frames carry the identity codec: strictly larger than the
        # gzip frames for these compressible columns.
        assert sum(len(f) for f in raw_frames) > sum(
            len(f) for f in gz_frames
        )
        assert read_chunk(raw_frames[1]).record_type == "bases"
        # No-handshake clients (in-process transports) keep level 1.
        assert sum(
            len(f) for f in edge_item_serializer(object()).encode_frames(item)
        ) == sum(len(f) for f in gz_frames)

    def test_payload_nbytes_counts_memoryview_storage(self):
        arr = np.zeros((10, 10))
        assert payload_nbytes(memoryview(arr)) == 800
        # Container overhead (16) + view nbytes + bytes len.
        assert payload_nbytes([memoryview(b"abcd"), b"ef"]) == 16 + 4 + 2


# ----------------------------------------- end-to-end view deliveries


def _pull_views_and_die(host, port, edge):  # pragma: no cover - in child
    client = TcpBrokerClient(host, port, views=True)
    status, _tag, _key, payload = client.pull(edge, timeout=10.0)
    assert status == PULL_OK
    assert isinstance(payload, memoryview)
    # Die holding the mapped view, delivery unacked: the broker must
    # reclaim the lease and a redelivery must read the original bytes.
    os.kill(os.getpid(), signal.SIGKILL)


@needs_shm
class TestViewDeliveries:
    def _server(self, threshold=64):
        broker = Broker()
        broker.create_edge("e", capacity=8, producers=1)
        return BrokerServer(
            broker, shm=True, shm_threshold=threshold
        ).start()

    def test_view_pull_is_readonly_and_counts_zero_copies(self):
        server = self._server()
        try:
            producer = TcpBrokerClient(*server.address)
            consumer = TcpBrokerClient(*server.address, views=True)
            assert consumer.views_active
            producer.attach_producer("e")
            blob = os.urandom(16384)
            assert producer.publish("e", "k", blob,
                                    timeout=5.0) == PUBLISH_OK
            tag, key, payload = _drain_pull(consumer, "e")
            assert isinstance(payload, memoryview)
            assert payload.readonly
            with pytest.raises(TypeError):
                payload[0] = 0x00
            assert bytes(payload) == blob
            payload.release()
            consumer.ack("e", tag)
            stat = consumer.stats()["e"]
            assert stat["raw_segments"] == 1
            assert stat["decode_copies"] == 0
            assert stat["decode_view_bytes"] == len(blob)
            producer.close()
            consumer.close()
        finally:
            server.stop()
        assert shm.list_segments(server._pool.prefix) == []

    def test_small_socket_payloads_still_copy_under_views_client(self):
        server = self._server(threshold=1 << 20)
        try:
            producer = TcpBrokerClient(*server.address)
            consumer = TcpBrokerClient(*server.address, views=True)
            producer.attach_producer("e")
            assert producer.publish("e", "k", b"tiny payload",
                                    timeout=5.0) == PUBLISH_OK
            tag, _key, payload = _drain_pull(consumer, "e")
            assert bytes(payload) == b"tiny payload"
            consumer.ack("e", tag)
            producer.close()
            consumer.close()
        finally:
            server.stop()

    def test_consumer_death_holding_views_never_corrupts_redelivery(self):
        server = self._server()
        try:
            producer = TcpBrokerClient(*server.address)
            producer.attach_producer("e")
            blob = os.urandom(16384)
            assert producer.publish("e", "k", blob,
                                    timeout=5.0) == PUBLISH_OK

            ctx = multiprocessing.get_context("fork")
            child = ctx.Process(
                target=_pull_views_and_die,
                args=(server.host, server.port, "e"),
            )
            child.start()
            child.join(15.0)
            assert child.exitcode == -signal.SIGKILL

            survivor = TcpBrokerClient(*server.address, views=True)
            tag, key, payload = _drain_pull(survivor, "e")
            assert (key, bytes(payload)) == ("k", blob)
            survivor.ack("e", tag)
            survivor.stats()  # flush past the deferred record
            assert _wait_for(lambda: server._pool.live_leases == 0)
            assert server.broker.stats()["e"]["total_redelivered"] == 1
            producer.close()
            survivor.close()
        finally:
            server.stop()
        # Leak check: the child died holding mapped views; its mappings
        # die with it, and nothing under the pool prefix survives stop.
        assert shm.list_segments(server._pool.prefix) == []

    def test_remote_queue_defers_ack_until_next_get(self):
        server = self._server()
        try:
            producer = TcpBrokerClient(*server.address)
            consumer = TcpBrokerClient(*server.address, views=True)
            inlet = RemoteQueue(producer, "e")
            outlet = RemoteQueue(consumer, "e")
            inlet.register_producer()
            first, second = os.urandom(8192), os.urandom(8192)
            inlet.put(first, timeout=5.0)
            inlet.put(second, timeout=5.0)

            got = outlet.get(timeout=5.0)
            assert isinstance(got, memoryview)
            assert bytes(got) == first
            # The delivery stays unacked while the decoded views are
            # live: the worker loop is still processing this item.
            assert server.broker.stats()["e"]["unacked"] == 1
            got.release()

            # The next get flushes the deferred ack before pulling.
            assert bytes(outlet.get(timeout=5.0)) == second
            assert _wait_for(
                lambda: server.broker.stats()["e"]["unacked"] == 1
            )
            outlet._flush_deferred()
            assert _wait_for(
                lambda: server.broker.stats()["e"]["unacked"] == 0
            )
            producer.close()
            consumer.close()
        finally:
            server.stop()
        assert shm.list_segments(server._pool.prefix) == []
