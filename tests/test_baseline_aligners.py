"""Tests for the baseline aligners: Smith-Waterman and BLAST-like."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.baseline import (
    BlastLikeAligner,
    SWScores,
    smith_waterman,
    sw_score_only,
)
from repro.genome.synthetic import ReadSimulator, synthetic_reference

dna = st.binary(min_size=1, max_size=30).map(
    lambda b: bytes(b"ACGT"[x % 4] for x in b)
)


class TestSmithWaterman:
    def test_exact_substring(self):
        al = smith_waterman(b"ACGTACGT", b"TTTACGTACGTTTT")
        assert al.score == 16
        assert al.ref_start == 3
        assert al.cigar == b"8M"

    def test_with_mismatch(self):
        al = smith_waterman(b"ACGAACGT", b"TTTACGTACGTTTT")
        assert al.score > 0
        assert al.read_end - al.read_start >= 4

    def test_with_gap(self):
        al = smith_waterman(b"ACGTCCACGT", b"ACGTCCGGACGTAA")
        assert al.score > 0

    def test_no_alignment(self):
        assert smith_waterman(b"AAAA", b"TTTT") is None

    def test_empty_inputs(self):
        assert smith_waterman(b"", b"ACGT") is None
        assert smith_waterman(b"ACGT", b"") is None

    def test_soft_clips_in_cigar(self):
        al = smith_waterman(b"TTTTACGTACGTACG", b"CCACGTACGTACGCC")
        assert al.cigar.startswith(b"4S") or al.read_start == 0

    def test_score_only(self):
        assert sw_score_only(b"ACGT", b"ACGT") == 8
        assert sw_score_only(b"AAAA", b"TTTT") == 0

    @given(dna)
    @settings(max_examples=60)
    def test_self_alignment_maximal(self, seq):
        scores = SWScores()
        assert sw_score_only(seq, seq) == len(seq) * scores.match

    @given(dna, dna)
    @settings(max_examples=60)
    def test_score_bounded(self, a, b):
        scores = SWScores()
        assert sw_score_only(a, b) <= min(len(a), len(b)) * scores.match

    @given(dna, dna)
    @settings(max_examples=40)
    def test_cigar_read_consistency(self, read, ref):
        from repro.align.result import cigar_read_span

        al = smith_waterman(read, ref)
        if al is not None:
            assert cigar_read_span(al.cigar) == len(read)


class TestBlastLike:
    @pytest.fixture(scope="class")
    def setup(self):
        ref = synthetic_reference(5_000, seed=401)
        sim = ReadSimulator(ref, read_length=80, seed=402)
        reads, origins = sim.simulate(40)
        return ref, reads, origins, BlastLikeAligner(ref)

    def test_planted_reads(self, setup):
        ref, reads, origins, aligner = setup
        exact = 0
        for read, origin in zip(reads, origins):
            result = aligner.align_read(read.bases)
            if result.is_aligned:
                _, local = ref.to_local(origin.global_pos)
                if result.position == local:
                    exact += 1
        assert exact >= 35

    def test_reverse_strand(self, setup):
        from repro.genome.sequence import reverse_complement

        ref, _, _, aligner = setup
        genome = ref.concatenated()
        result = aligner.align_read(reverse_complement(genome[1000:1080]))
        assert result.is_aligned and result.is_reverse

    def test_unrelated_unmapped(self, setup):
        _, _, _, aligner = setup
        import numpy as np

        rng = np.random.default_rng(11)
        junk = bytes(b"ACGT"[x] for x in rng.integers(0, 4, size=80))
        result = aligner.align_read(junk)
        assert not result.is_aligned or result.edit_distance > 5
