"""Tests for SAM records, headers, and AGD conversion."""

import io

import pytest

from repro.align.result import (
    FLAG_REVERSE,
    FLAG_UNMAPPED,
    AlignmentResult,
)
from repro.formats.sam import (
    SamFormatError,
    SamHeader,
    SamRecord,
    alignment_from_record,
    cigar_matches_sequence,
    read_sam,
    record_from_alignment,
    sam_bytes,
    write_sam,
)
from repro.genome.reads import ReadRecord
from repro.genome.sequence import reverse_complement


def make_record(**overrides) -> SamRecord:
    fields = dict(
        qname="r1", flag=0, rname="chr1", pos=100, mapq=60, cigar="4M",
        rnext="*", pnext=0, tlen=0, seq=b"ACGT", qual=b"IIII",
    )
    fields.update(overrides)
    return SamRecord(**fields)


class TestSamRecord:
    def test_line_roundtrip(self):
        record = make_record(tags={"NM": 2, "XA": "alt"})
        back = SamRecord.from_line(record.to_line())
        assert back == record

    def test_star_fields(self):
        record = make_record(seq=b"", qual=b"", cigar="")
        line = record.to_line()
        assert b"\t*\t" in line
        back = SamRecord.from_line(line)
        assert back.seq == b"" and back.cigar == ""

    def test_too_few_fields(self):
        with pytest.raises(SamFormatError):
            SamRecord.from_line(b"a\tb\tc\n")

    def test_non_numeric_field(self):
        line = make_record().to_line().replace(b"\t100\t", b"\tabc\t")
        with pytest.raises(SamFormatError):
            SamRecord.from_line(line)

    def test_malformed_tag(self):
        with pytest.raises(SamFormatError):
            SamRecord.from_line(
                b"q\t0\tchr1\t1\t60\t4M\t*\t0\t0\tACGT\tIIII\tbadtag\n"
            )

    def test_float_tag(self):
        record = make_record(tags={"AS": 1.5})
        assert SamRecord.from_line(record.to_line()).tags["AS"] == 1.5

    def test_location_key(self):
        mapped = make_record()
        unmapped = make_record(flag=FLAG_UNMAPPED, rname="*", pos=0)
        assert mapped.location_key() < unmapped.location_key()

    def test_cigar_matches_sequence(self):
        assert cigar_matches_sequence(make_record())
        assert not cigar_matches_sequence(make_record(cigar="3M"))
        assert cigar_matches_sequence(make_record(cigar=""))


class TestSamHeader:
    def test_roundtrip(self):
        header = SamHeader(
            contigs=[{"name": "chr1", "length": 1000}],
            sort_order="coordinate",
        )
        parsed = SamHeader.from_lines(header.to_bytes().splitlines())
        assert parsed.contigs == [{"name": "chr1", "length": 1000}]
        assert parsed.sort_order == "coordinate"


class TestConversion:
    def test_forward_alignment(self):
        read = ReadRecord(b"r1 desc", b"ACGT", b"IIII")
        result = AlignmentResult(
            flag=0, mapq=55, contig_index=0, position=99, cigar=b"4M",
            edit_distance=1,
        )
        record = record_from_alignment(read, result, ["chr1"])
        assert record.qname == "r1"
        assert record.pos == 100  # 1-based
        assert record.seq == b"ACGT"
        assert record.tags["NM"] == 1

    def test_reverse_alignment_rc(self):
        """SAM stores reverse-strand reads reverse-complemented."""
        read = ReadRecord(b"r1", b"AACC", b"ABCD")
        result = AlignmentResult(
            flag=FLAG_REVERSE, mapq=50, contig_index=0, position=10,
            cigar=b"4M",
        )
        record = record_from_alignment(read, result, ["chr1"])
        assert record.seq == reverse_complement(b"AACC")
        assert record.qual == b"DCBA"

    def test_unmapped(self):
        read = ReadRecord(b"r1", b"ACGT", b"IIII")
        record = record_from_alignment(read, AlignmentResult(), ["chr1"])
        assert record.rname == "*" and record.pos == 0
        assert record.seq == b"ACGT"

    def test_mate_same_contig_uses_equals(self):
        read = ReadRecord(b"r1", b"ACGT", b"IIII")
        result = AlignmentResult(
            flag=0x1 | 0x40, mapq=50, contig_index=0, position=10,
            next_contig_index=0, next_position=200, cigar=b"4M",
        )
        record = record_from_alignment(read, result, ["chr1"])
        assert record.rnext == "=" and record.pnext == 201

    def test_roundtrip_via_sam(self):
        read = ReadRecord(b"r9", b"ACGTACGT", b"IIIIIIII")
        result = AlignmentResult(
            flag=FLAG_REVERSE, mapq=44, contig_index=1, position=77,
            cigar=b"8M", edit_distance=2,
        )
        contigs = ["chr1", "chr2"]
        record = record_from_alignment(read, result, contigs)
        read2, result2 = alignment_from_record(record, contigs)
        assert read2.bases == read.bases
        assert read2.qualities == read.qualities
        assert result2.position == result.position
        assert result2.flag == result.flag
        assert result2.cigar == result.cigar

    def test_unknown_contig_rejected(self):
        record = make_record(rname="chrX")
        with pytest.raises(SamFormatError):
            alignment_from_record(record, ["chr1"])


class TestFileIO:
    def test_write_read(self, tmp_path):
        header = SamHeader(contigs=[{"name": "chr1", "length": 500}])
        records = [make_record(qname=f"r{i}", pos=i + 1) for i in range(10)]
        path = tmp_path / "x.sam"
        assert write_sam(header, records, path) == 10
        header2, records2 = read_sam(path)
        assert records2 == records
        assert header2.contigs == header.contigs

    def test_sam_bytes(self):
        header = SamHeader(contigs=[{"name": "c", "length": 5}])
        blob = sam_bytes(header, [make_record(rname="c")])
        assert blob.startswith(b"@HD")
        header2, records = read_sam(io.BytesIO(blob))
        assert len(records) == 1
