"""Tests for AGD <-> FASTQ/SAM/BAM converters (§5.7 operations)."""

import io

import pytest

from repro.formats.converters import (
    export_bam,
    export_fastq,
    export_sam,
    import_bam,
    import_fastq_stream,
    import_reads,
    import_sam,
    iter_read_records,
)
from repro.formats.fastq import fastq_bytes
from repro.formats.sam import read_sam
from repro.formats.bam import read_bam
from repro.storage.base import MemoryStore


class TestImportFastq:
    def test_import(self, reads):
        blob = fastq_bytes(reads)
        ds = import_fastq_stream(io.BytesIO(blob), "imp", MemoryStore(),
                                 chunk_size=64)
        assert ds.total_records == len(reads)
        assert ds.columns == ["bases", "metadata", "qual"]
        assert ds.read_column("bases") == [r.bases for r in reads]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            import_fastq_stream(io.BytesIO(b""), "x", MemoryStore())

    def test_roundtrip_through_agd(self, reads):
        ds = import_reads(reads, "rt", MemoryStore(), chunk_size=50)
        assert list(iter_read_records(ds)) == list(reads)

    def test_export_fastq(self, reads):
        ds = import_reads(reads, "exp", MemoryStore(), chunk_size=50)
        buf = io.BytesIO()
        assert export_fastq(ds, buf) == len(reads)
        assert buf.getvalue() == fastq_bytes(reads)


class TestExportAligned:
    def test_export_sam(self, aligned_dataset, reads):
        buf = io.BytesIO()
        count = export_sam(aligned_dataset, buf)
        assert count == len(reads)
        buf.seek(0)
        header, records = read_sam(buf)
        assert len(records) == len(reads)
        assert {c["name"] for c in header.contigs} == {"chr1", "chr2"}
        mapped = [r for r in records if not r.is_unmapped]
        assert len(mapped) > 0.95 * len(records)

    def test_export_bam(self, aligned_dataset, reads):
        buf = io.BytesIO()
        nbytes = export_bam(aligned_dataset, buf)
        assert nbytes == len(buf.getvalue())
        buf.seek(0)
        _, records = read_bam(buf)
        assert len(records) == len(reads)

    def test_export_without_reference_rejected(self, reads):
        ds = import_reads(reads, "noref", MemoryStore(), chunk_size=50)
        with pytest.raises(ValueError):
            export_sam(ds, io.BytesIO())

    def test_sam_bam_record_parity(self, aligned_dataset):
        sam_buf, bam_buf = io.BytesIO(), io.BytesIO()
        export_sam(aligned_dataset, sam_buf)
        export_bam(aligned_dataset, bam_buf)
        sam_buf.seek(0)
        bam_buf.seek(0)
        _, sam_records = read_sam(sam_buf)
        _, bam_records = read_bam(bam_buf)
        for s, b in zip(sam_records, bam_records):
            assert (s.qname, s.pos, s.flag, s.cigar, s.seq) == (
                b.qname, b.pos, b.flag, b.cigar, b.seq
            )

    def test_agd_results_smaller_than_sam(self, aligned_dataset):
        """The Table 1 write-volume claim at dataset scale."""
        buf = io.BytesIO()
        export_sam(aligned_dataset, buf)
        results_bytes = aligned_dataset.column_bytes("results")
        assert len(buf.getvalue()) > 8 * results_bytes


class TestImportAligned:
    def test_sam_import_roundtrip(self, aligned_dataset):
        buf = io.BytesIO()
        export_sam(aligned_dataset, buf)
        buf.seek(0)
        back = import_sam(buf, "back", MemoryStore(), chunk_size=100)
        assert back.total_records == aligned_dataset.total_records
        original = aligned_dataset.read_column("results")
        imported = back.read_column("results")
        matched = sum(
            1 for o, i in zip(original, imported)
            if o.position == i.position and o.flag == i.flag
        )
        assert matched == len(original)

    def test_bam_import_roundtrip(self, aligned_dataset):
        buf = io.BytesIO()
        export_bam(aligned_dataset, buf)
        buf.seek(0)
        back = import_bam(buf, "back", MemoryStore(), chunk_size=100)
        assert back.total_records == aligned_dataset.total_records
