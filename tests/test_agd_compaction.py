"""Property tests for AGD 3-bit base compaction (§3: 21 bases/u64)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.agd.compaction import (
    BASES_PER_WORD,
    pack_bases,
    pack_column,
    packed_size,
    unpack_bases,
    unpack_column,
)

sequences = st.binary(max_size=400).map(
    lambda b: bytes(b"ACGTN"[x % 5] for x in b)
)


class TestPackedSize:
    def test_zero(self):
        assert packed_size(0) == 0

    def test_one_word(self):
        assert packed_size(1) == 8
        assert packed_size(21) == 8

    def test_two_words(self):
        assert packed_size(22) == 16

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            packed_size(-1)

    def test_constant(self):
        assert BASES_PER_WORD == 21


class TestPackUnpack:
    def test_empty(self):
        assert pack_bases(b"") == b""
        assert unpack_bases(b"", 0) == b""

    def test_simple(self):
        packed = pack_bases(b"ACGTN")
        assert len(packed) == 8
        assert unpack_bases(packed, 5) == b"ACGTN"

    def test_exactly_21(self):
        seq = b"ACGTN" * 4 + b"A"
        packed = pack_bases(seq)
        assert len(packed) == 8
        assert unpack_bases(packed, 21) == seq

    def test_compression_ratio(self):
        # 3 bits vs 8 bits: a 101-base read fits in 40 bytes.
        assert packed_size(101) == 40

    def test_wrong_length_rejected(self):
        packed = pack_bases(b"ACGT")
        with pytest.raises(ValueError):
            unpack_bases(packed, 25)

    @given(sequences)
    def test_roundtrip(self, seq):
        assert unpack_bases(pack_bases(seq), len(seq)) == seq

    @given(sequences)
    def test_size_formula(self, seq):
        assert len(pack_bases(seq)) == packed_size(len(seq))


class TestColumn:
    def test_roundtrip_column(self):
        seqs = [b"ACGT", b"", b"N" * 30, b"A"]
        data, lengths = pack_column(seqs)
        assert lengths == [4, 0, 30, 1]
        assert unpack_column(data, lengths) == seqs

    def test_truncated_rejected(self):
        data, lengths = pack_column([b"ACGT" * 10])
        with pytest.raises(ValueError):
            unpack_column(data[:-1], lengths)

    def test_trailing_rejected(self):
        data, lengths = pack_column([b"ACGT"])
        with pytest.raises(ValueError):
            unpack_column(data + b"\0" * 8, lengths)

    @given(st.lists(sequences, max_size=20))
    def test_roundtrip_property(self, seqs):
        data, lengths = pack_column(seqs)
        assert unpack_column(data, lengths) == seqs
