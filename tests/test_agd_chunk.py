"""Tests for the AGD chunk codec, including corruption handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.agd.chunk import (
    HEADER_SIZE,
    ChunkFormatError,
    ChunkHeader,
    chunk_record_count,
    read_chunk,
    read_chunk_header,
    read_chunk_index,
    write_chunk,
)
from repro.agd.compression import available_codecs
from repro.align.result import AlignmentResult

sequences = st.binary(max_size=120).map(
    lambda b: bytes(b"ACGTN"[x % 5] for x in b)
)


class TestHeader:
    def test_roundtrip(self):
        header = ChunkHeader(
            record_type="bases", codec_name="gzip", record_count=7,
            first_ordinal=100, compressed_size=50, uncompressed_size=80,
            data_crc=123, index_crc=456,
        )
        raw = header.to_bytes()
        assert len(raw) == HEADER_SIZE
        assert ChunkHeader.from_bytes(raw) == header

    def test_bad_magic(self):
        with pytest.raises(ChunkFormatError):
            ChunkHeader.from_bytes(b"X" * HEADER_SIZE)

    def test_truncated(self):
        with pytest.raises(ChunkFormatError):
            ChunkHeader.from_bytes(b"AGDC")

    def test_bad_version(self):
        header = ChunkHeader("bases", "gzip", 1, 0, 1, 1, 0, 0)
        raw = bytearray(header.to_bytes())
        raw[4] = 99  # version field
        with pytest.raises(ChunkFormatError):
            ChunkHeader.from_bytes(bytes(raw))


class TestRoundTrip:
    def test_bases_chunk(self):
        records = [b"ACGT", b"GGGG", b"N" * 25]
        blob = write_chunk(records, "bases", first_ordinal=10)
        chunk = read_chunk(blob)
        assert chunk.records == records
        assert chunk.record_type == "bases"
        assert chunk.first_ordinal == 10

    def test_text_chunk(self):
        records = [b"read.1", b"", b"read.3 extra"]
        blob = write_chunk(records, "text")
        assert read_chunk(blob).records == records

    def test_results_chunk(self):
        records = [
            AlignmentResult(flag=0, mapq=60, contig_index=0, position=5,
                            cigar=b"10M"),
            AlignmentResult(),  # unmapped
        ]
        blob = write_chunk(records, "results")
        assert read_chunk(blob).records == records

    @pytest.mark.parametrize("codec", available_codecs())
    def test_all_codecs(self, codec):
        records = [b"ACGT" * 30] * 5
        blob = write_chunk(records, "bases", codec=codec)
        assert read_chunk(blob).records == records
        assert read_chunk_header(blob).codec_name == codec

    def test_header_only_read(self):
        blob = write_chunk([b"x"] * 42, "text", first_ordinal=7)
        assert chunk_record_count(blob) == 42
        header = read_chunk_header(blob)
        assert header.first_ordinal == 7

    def test_index_only_read(self):
        blob = write_chunk([b"ab", b"cde"], "text")
        header, index = read_chunk_index(blob)
        assert [index[i] for i in range(len(index))] == [2, 3]

    @given(st.lists(sequences, min_size=1, max_size=30))
    def test_roundtrip_property(self, records):
        blob = write_chunk(records, "bases")
        assert read_chunk(blob).records == records

    def test_unknown_record_type(self):
        from repro.agd.records import UnknownRecordTypeError

        with pytest.raises(UnknownRecordTypeError):
            write_chunk([b"x"], "nonsense")


class TestCorruption:
    """Failure injection: every corruption mode must be detected."""

    @pytest.fixture()
    def blob(self):
        return write_chunk([b"ACGT" * 10] * 20, "bases")

    def test_truncated_index(self, blob):
        with pytest.raises(ChunkFormatError, match="index"):
            read_chunk(blob[: HEADER_SIZE + 10])

    def test_truncated_data(self, blob):
        with pytest.raises(ChunkFormatError, match="truncated|decompress"):
            read_chunk(blob[:-5])

    def test_flipped_data_byte(self, blob):
        corrupted = bytearray(blob)
        corrupted[-1] ^= 0xFF
        with pytest.raises(ChunkFormatError):
            read_chunk(bytes(corrupted))

    def test_flipped_index_byte(self, blob):
        corrupted = bytearray(blob)
        corrupted[HEADER_SIZE] ^= 0xFF
        with pytest.raises(ChunkFormatError, match="CRC"):
            read_chunk(bytes(corrupted))

    def test_not_a_chunk(self):
        with pytest.raises(ChunkFormatError):
            read_chunk(b"this is not an AGD chunk at all, not even close....")

    def test_empty(self):
        with pytest.raises(ChunkFormatError):
            read_chunk(b"")
