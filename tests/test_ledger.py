"""Durable runs: ledger replay, torn writes, and crash-resume identity.

The crash tests SIGKILL a real ``persona`` subprocess mid-pipeline (via
the ``PERSONA_CRASH_AFTER`` chaos hook, which kills the process right
after the n-th journaled chunk of a stage) and then resume it from the
ledger, asserting the resumed output is byte-identical to an
uninterrupted run.  The crash point is randomized but seeded: CI sets
``PERSONA_CHAOS_SEED`` from the workflow run id so every PR exercises a
different (but reproducible) kill site.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.ledger import (
    CRASH_ENV,
    LedgerError,
    RunLedger,
    blob_digest,
    list_runs,
)
from repro.formats.converters import import_reads
from repro.genome.reference import write_fasta
from repro.genome.synthetic import synthetic_dataset
from repro.storage.base import DirectoryStore

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

#: Seeded chaos: which align chunk the crash tests kill after (1..5).
CHAOS_SEED = int(os.environ.get("PERSONA_CHAOS_SEED", "0") or "0")
CRASH_AFTER = 1 + CHAOS_SEED % 5


def _run_cli(args, env=None, timeout=180):
    """Run ``persona`` as a real subprocess (crash tests need a real kill)."""
    full_env = os.environ.copy()
    full_env["PYTHONPATH"] = (
        str(SRC_DIR) + os.pathsep + full_env.get("PYTHONPATH", "")
    )
    full_env.pop(CRASH_ENV, None)
    if env:
        full_env.update(env)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        env=full_env,
        timeout=timeout,
    )


def _assert_killed(proc):
    assert proc.returncode in (-9, 137), (
        f"expected SIGKILL, got rc={proc.returncode}\n"
        f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )


def _tree_bytes(root: Path) -> "dict[str, bytes]":
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def _assert_identical_trees(ref: Path, got: Path) -> None:
    ref_files, got_files = _tree_bytes(ref), _tree_bytes(got)
    assert sorted(ref_files) == sorted(got_files)
    differing = [k for k in ref_files if ref_files[k] != got_files[k]]
    assert not differing, f"resumed output differs from reference: {differing}"


@pytest.fixture(scope="module")
def durable_ws(tmp_path_factory):
    """Reference FASTA + a factory that stamps out identical datasets."""
    root = tmp_path_factory.mktemp("durable")
    ref, reads, _ = synthetic_dataset(
        genome_length=15_000, coverage=2.0, seed=555, duplicate_fraction=0.1
    )
    write_fasta(ref, root / "ref.fa")

    def make_dataset(dst: Path):
        store = DirectoryStore(dst)
        ds = import_reads(reads, "smoke", store, chunk_size=60)
        ds.save_manifest(dst)
        return ds

    return root, make_dataset


# ------------------------------------------------------------ replay


class TestReplay:
    def test_append_replay_roundtrip(self, tmp_path):
        ledger = RunLedger.create(tmp_path, run_id="r1", meta={"k": "v"})
        ledger.chunk_done("align", "c0.results", "d0", store="dataset")
        ledger.chunk_done("align", "c1.results", "d1", store="dataset")
        ledger.chunk_done("sort", "s0.bases", "d2", store="output")
        ledger.edge_ack("work", "c0.results")
        ledger.complete(wall_seconds=1.5, chunks=3)
        ledger.close()

        state = RunLedger.replay(tmp_path / "r1.jsonl")
        assert state.run_id == "r1"
        assert state.meta["k"] == "v"
        assert state.attempts == 1
        assert state.chunks[("align", "c1.results")] == "d1"
        assert state.stage_counts == {"align": 2, "sort": 1}
        assert state.writes[("output", "s0.bases")] == "d2"
        assert state.edge_acks["work"] == {"c0.results"}
        assert state.status == "complete"
        assert not state.torn_tail

    def test_latest_digest_wins(self, tmp_path):
        ledger = RunLedger.create(tmp_path, run_id="r1")
        ledger.chunk_done("align", "c0", "old")
        ledger.chunk_done("align", "c0", "new")
        ledger.close()
        state = RunLedger.replay(tmp_path / "r1.jsonl")
        assert state.chunks[("align", "c0")] == "new"

    def test_torn_write_tolerated_and_truncated(self, tmp_path):
        ledger = RunLedger.create(tmp_path, run_id="r1")
        ledger.chunk_done("align", "c0", "d0")
        ledger.close()
        path = tmp_path / "r1.jsonl"
        good_bytes = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b'deadbeef {"t":"chunk_done","partial')  # torn record

        state = RunLedger.replay(path)
        assert state.torn_tail
        assert state.status == "interrupted"
        assert state.good_bytes == good_bytes
        assert state.chunks[("align", "c0")] == "d0"

        resumed = RunLedger.resume(tmp_path, run_id="r1")
        resumed.chunk_done("align", "c1", "d1")
        resumed.close()
        state = RunLedger.replay(path)
        assert not state.torn_tail
        assert state.attempts == 2
        assert state.chunks[("align", "c1")] == "d1"

    def test_corrupt_middle_record_stops_replay(self, tmp_path):
        ledger = RunLedger.create(tmp_path, run_id="r1")
        ledger.chunk_done("align", "c0", "d0")
        ledger.close()
        path = tmp_path / "r1.jsonl"
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip a payload byte without fixing the CRC.
        bad = lines[-1][:-10] + b"X" + lines[-1][-9:]
        path.write_bytes(b"".join(lines[:-1]) + bad)
        state = RunLedger.replay(path)
        assert state.torn_tail
        assert ("align", "c0") not in state.chunks

    def test_resume_missing_run_raises(self, tmp_path):
        with pytest.raises(LedgerError):
            RunLedger.resume(tmp_path / "empty")
        with pytest.raises(LedgerError):
            RunLedger.run_path(tmp_path / "empty", "nope")

    def test_create_refuses_existing_run_id(self, tmp_path):
        RunLedger.create(tmp_path, run_id="r1").close()
        with pytest.raises(LedgerError):
            RunLedger.create(tmp_path, run_id="r1")

    def test_list_runs(self, tmp_path):
        assert list_runs(tmp_path / "missing") == []
        RunLedger.create(tmp_path, run_id="a").close()
        b = RunLedger.create(tmp_path, run_id="b")
        b.complete()
        b.close()
        runs = list_runs(tmp_path)
        assert {s.run_id for s in runs} == {"a", "b"}
        by_id = {s.run_id: s for s in runs}
        assert by_id["a"].status == "incomplete"
        assert by_id["b"].status == "complete"


# ------------------------------------------------ crash-resume identity


class TestCrashResume:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_crash_resume_byte_identity(self, durable_ws, tmp_path, backend):
        root, make_dataset = durable_ws
        make_dataset(tmp_path / "ds-ref")
        make_dataset(tmp_path / "ds-run")
        base = [
            "--reference", str(root / "ref.fa"),
            "--stages", "align,sort,dupmark,varcall",
            "--backend", backend, "--workers", "2",
        ]

        ref = _run_cli([
            "pipeline", str(tmp_path / "ds-ref"), str(tmp_path / "out-ref"),
            "--vcf", str(tmp_path / "ref.vcf"), *base,
        ])
        assert ref.returncode == 0, ref.stderr

        run_args = [
            "pipeline", str(tmp_path / "ds-run"), str(tmp_path / "out-run"),
            "--vcf", str(tmp_path / "run.vcf"), *base,
            "--ledger-dir", str(tmp_path / "runs"), "--run-id", "crashed",
            "--scratch-dir", str(tmp_path / "scratch"),
        ]
        crashed = _run_cli(
            run_args, env={CRASH_ENV: f"align:{CRASH_AFTER}"}
        )
        _assert_killed(crashed)

        resumed = _run_cli(run_args + ["--resume"])
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed" in resumed.stdout

        _assert_identical_trees(tmp_path / "out-ref", tmp_path / "out-run")
        _assert_identical_trees(tmp_path / "ds-ref", tmp_path / "ds-run")
        assert (tmp_path / "ref.vcf").read_bytes() == \
            (tmp_path / "run.vcf").read_bytes()

        state = RunLedger.replay(tmp_path / "runs" / "crashed.jsonl")
        assert state.status == "complete"
        assert state.attempts == 2
        skipped = state.complete.get("skipped", {})
        assert skipped.get("align", 0) >= CRASH_AFTER

    def test_placed_tcp_crash_resume_byte_identity(self, durable_ws,
                                                   tmp_path):
        root, make_dataset = durable_ws
        make_dataset(tmp_path / "ds-ref")
        make_dataset(tmp_path / "ds-run")
        base = [
            "--plan", "A=align,sort;B=dupmark,varcall",
            "--reference", str(root / "ref.fa"),
            "--transport", "tcp", "--backend", "serial",
        ]

        ref = _run_cli([
            "cluster", "run", str(tmp_path / "ds-ref"),
            str(tmp_path / "out-ref"), "--vcf", str(tmp_path / "ref.vcf"),
            *base,
        ])
        assert ref.returncode == 0, ref.stderr

        run_args = [
            "cluster", "run", str(tmp_path / "ds-run"),
            str(tmp_path / "out-run"), "--vcf", str(tmp_path / "run.vcf"),
            *base,
            "--ledger-dir", str(tmp_path / "runs"),
            "--scratch-dir", str(tmp_path / "scratch"),
        ]
        crashed = _run_cli(
            run_args, env={CRASH_ENV: f"align:{CRASH_AFTER}"}
        )
        _assert_killed(crashed)

        resumed = _run_cli(run_args + ["--resume"])
        assert resumed.returncode == 0, resumed.stderr

        _assert_identical_trees(tmp_path / "out-ref", tmp_path / "out-run")
        _assert_identical_trees(tmp_path / "ds-ref", tmp_path / "ds-run")
        assert (tmp_path / "ref.vcf").read_bytes() == \
            (tmp_path / "run.vcf").read_bytes()

        states = list_runs(tmp_path / "runs")
        assert len(states) == 1
        assert states[0].status == "complete"
        assert states[0].attempts == 2
        # The broker pre-acked the aligned chunks instead of redelivering.
        assert states[0].complete.get("skipped", {}).get("align", 0) >= 1


# -------------------------------------------------------- provenance


class TestRunsCli:
    @pytest.fixture(scope="class")
    def completed_run(self, durable_ws, tmp_path_factory):
        root, make_dataset = durable_ws
        work = tmp_path_factory.mktemp("runscli")
        make_dataset(work / "ds")
        rc = main([
            "pipeline", str(work / "ds"), str(work / "out"),
            "--reference", str(root / "ref.fa"),
            "--stages", "align,sort,dupmark",
            "--backend", "serial",
            "--ledger-dir", str(work / "runs"), "--run-id", "prov",
        ])
        assert rc == 0
        return work

    def test_runs_list_and_show(self, completed_run, capsys):
        work = completed_run
        assert main(["runs", "list", str(work / "runs")]) == 0
        out = capsys.readouterr().out
        assert "prov" in out and "complete" in out

        assert main(["runs", "show", str(work / "runs"), "prov"]) == 0
        out = capsys.readouterr().out
        assert "dataset_fingerprint" in out
        assert "align" in out and "sort" in out
        assert "wall" in out  # completion timings

    def test_runs_verify_detects_tampering(self, completed_run, capsys):
        work = completed_run
        assert main(["runs", "verify", str(work / "runs"), "prov"]) == 0
        capsys.readouterr()

        target = sorted((work / "out").glob("*.bases"))[0]
        original = target.read_bytes()
        tampered = bytearray(original)
        tampered[len(tampered) // 2] ^= 0xFF
        target.write_bytes(bytes(tampered))
        try:
            assert main(["runs", "verify", str(work / "runs"), "prov"]) == 1
            out = capsys.readouterr().out
            assert "tampered" in out
        finally:
            target.write_bytes(original)
        assert main(["runs", "verify", str(work / "runs"), "prov"]) == 0

    def test_runs_verify_detects_missing_chunk(self, completed_run, capsys):
        work = completed_run
        target = sorted((work / "out").glob("*.qual"))[0]
        original = target.read_bytes()
        target.unlink()
        try:
            assert main(["runs", "verify", str(work / "runs"), "prov"]) == 1
            assert "missing" in capsys.readouterr().out
        finally:
            target.write_bytes(original)

    def test_resume_refuses_changed_dataset(self, durable_ws, tmp_path):
        root, make_dataset = durable_ws
        make_dataset(tmp_path / "ds")
        rc = main([
            "pipeline", str(tmp_path / "ds"), str(tmp_path / "out"),
            "--reference", str(root / "ref.fa"),
            "--stages", "align,sort", "--backend", "serial",
            "--ledger-dir", str(tmp_path / "runs"), "--run-id", "r1",
        ])
        assert rc == 0
        # Same ledger, different stage list: refused up front.
        rc = main([
            "pipeline", str(tmp_path / "ds"), str(tmp_path / "out2"),
            "--reference", str(root / "ref.fa"),
            "--stages", "align,sort,dupmark", "--backend", "serial",
            "--ledger-dir", str(tmp_path / "runs"), "--resume",
        ])
        assert rc == 2


# ------------------------------------------------------- atomic writes


class TestAtomicStore:
    def test_put_leaves_no_tmp_residue(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.put("chunk.bases", b"payload")
        assert (tmp_path / "chunk.bases").read_bytes() == b"payload"
        assert not list(tmp_path.glob("*.tmp"))

    def test_keys_skip_orphaned_tmp_files(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.put("chunk.bases", b"payload")
        (tmp_path / "chunk.bases.123.tmp").write_bytes(b"torn")
        assert set(store.keys()) == {"chunk.bases"}

    def test_overwrite_is_atomic_replace(self, tmp_path):
        store = DirectoryStore(tmp_path)
        store.put("k", b"old")
        store.put("k", b"new")
        assert store.get("k") == b"new"
        assert blob_digest(store.get("k")) == blob_digest(b"new")
