"""Tests for the SNAP-like aligner: index and seed-and-extend."""

import numpy as np
import pytest

from repro.align.snap import SeedIndex, SnapAligner, compute_mapq
from repro.genome.sequence import reverse_complement
from repro.genome.synthetic import synthetic_reference


class TestSeedIndex:
    def test_build_stats(self, seed_index, reference):
        assert seed_index.num_seeds == len(reference) - 16 + 1
        assert 0 < seed_index.num_distinct <= seed_index.num_seeds
        assert seed_index.memory_bytes() > 0

    def test_lookup_finds_genome_substring(self, seed_index, reference):
        genome = reference.concatenated()
        seed = genome[500:516]
        hit = seed_index.lookup(seed)
        assert 500 in hit.positions.tolist()

    def test_lookup_positions_sorted_within_seed(self, seed_index, reference):
        genome = reference.concatenated()
        seed = genome[100:116]
        positions = seed_index.lookup(seed).positions
        assert list(positions) == sorted(positions)
        for pos in positions:
            assert genome[pos : pos + 16] == seed

    def test_lookup_absent(self, seed_index):
        # A seed with N never indexes.
        hit = seed_index.lookup(b"N" * 16)
        assert len(hit) == 0

    def test_wrong_length_rejected(self, seed_index):
        with pytest.raises(ValueError):
            seed_index.lookup(b"ACGT")

    def test_popular_seed_filtered(self):
        ref = synthetic_reference(2000, seed=3)
        # Splice a highly-repetitive region in.
        from repro.genome.reference import reference_from_sequences

        repetitive = reference_from_sequences(
            [("rep", b"ACGTACGTACGTACGT" * 100 + ref.concatenated())]
        )
        index = SeedIndex(repetitive, seed_length=16, max_hits=8)
        hit = index.lookup(b"ACGTACGTACGTACGT")
        assert len(hit) == 0  # too popular

    def test_invalid_params(self, reference):
        with pytest.raises(ValueError):
            SeedIndex(reference, seed_length=2)
        with pytest.raises(ValueError):
            SeedIndex(reference, seed_length=40)
        with pytest.raises(ValueError):
            SeedIndex(reference, max_hits=0)

    def test_encode_read_seeds_matches_single(self, seed_index, reference):
        genome = reference.concatenated()
        read = genome[1000:1101]
        offsets = [0, 8, 85]
        values = seed_index.encode_read_seeds(read, offsets)
        for offset, value in zip(offsets, values):
            assert value == seed_index.encode_seed(read[offset : offset + 16])


class TestSnapAligner:
    def test_planted_reads_recovered(self, snap_aligner, reference, reads, origins):
        exact = 0
        for read, origin in zip(reads[:200], origins[:200]):
            result = snap_aligner.align_read(read.bases)
            assert result.is_aligned
            contig, local = reference.to_local(origin.global_pos)
            if result.position == local and result.is_reverse == origin.reverse:
                exact += 1
        assert exact >= 196  # >=98% exact on synthetic data

    def test_contig_index_correct(self, snap_aligner, reference, reads, origins):
        names = reference.names
        for read, origin in zip(reads[:50], origins[:50]):
            result = snap_aligner.align_read(read.bases)
            contig, _ = reference.to_local(origin.global_pos)
            if result.is_aligned:
                assert names[result.contig_index] == contig

    def test_reverse_strand(self, snap_aligner, reference):
        genome = reference.concatenated()
        window = genome[2000:2101]
        result = snap_aligner.align_read(reverse_complement(window))
        assert result.is_aligned and result.is_reverse
        assert reference.to_local(2000)[1] == result.position

    def test_garbage_unmapped(self, snap_aligner):
        rng = np.random.default_rng(0)
        # Random read: overwhelmingly unlikely to share 16-mers.
        read = bytes(b"ACGT"[x] for x in rng.integers(0, 4, size=101))
        result = snap_aligner.align_read(read)
        # Either unmapped or genuinely poor mapq.
        assert not result.is_aligned or result.mapq <= 10

    def test_short_read_unmapped(self, snap_aligner):
        assert not snap_aligner.align_read(b"ACGT").is_aligned

    def test_read_with_errors_still_aligns(self, reference, seed_index):
        aligner = SnapAligner(seed_index)
        genome = reference.concatenated()
        read = bytearray(genome[5000:5101])
        read[10] ^= 6  # mutate a base
        read[60] ^= 2
        result = aligner.align_read(bytes(read))
        assert result.is_aligned
        assert reference.to_local(5000)[1] == result.position
        assert result.edit_distance == 2

    def test_indel_read_gets_indel_cigar(self, reference, seed_index):
        aligner = SnapAligner(seed_index)
        genome = reference.concatenated()
        window = bytearray(genome[7000:7102])
        del window[50]  # deletion in read relative to reference
        read = bytes(window[:101])
        result = aligner.align_read(read)
        assert result.is_aligned
        assert b"D" in result.cigar

    def test_cigar_consumes_read(self, snap_aligner, reads):
        from repro.align.result import cigar_read_span

        for read in reads[:100]:
            result = snap_aligner.align_read(read.bases)
            if result.is_aligned:
                assert cigar_read_span(result.cigar) == len(read.bases)

    def test_stats_accumulate(self, seed_index):
        aligner = SnapAligner(seed_index)
        aligner.align_read(b"A" * 101)
        assert aligner.stats.reads == 1

    def test_unique_alignment_high_mapq(self, snap_aligner, reference):
        genome = reference.concatenated()
        result = snap_aligner.align_read(genome[9000:9101])
        assert result.mapq >= 40


class TestMapq:
    def test_unique_high(self):
        assert compute_mapq(0, None, 8) == 60

    def test_decreases_with_distance(self):
        assert compute_mapq(4, None, 8) < compute_mapq(0, None, 8)

    def test_tie_low(self):
        assert compute_mapq(2, 2, 8) <= 3

    def test_gap_increases(self):
        assert compute_mapq(0, 4, 8) > compute_mapq(0, 1, 8)

    def test_bounds(self):
        for best in range(8):
            for second in (None, best, best + 1, best + 5):
                q = compute_mapq(best, second, 8)
                assert 0 <= q <= 60
