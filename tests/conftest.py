"""Shared fixtures: small synthetic datasets and prebuilt aligner indexes.

Expensive structures (reference, indexes, aligned datasets) are session-
scoped; tests must not mutate them.  Mutating tests build their own from
the cheap factories.
"""

from __future__ import annotations

import pytest

from repro.align.bwa import BwaMemAligner, FMIndex
from repro.align.snap import SeedIndex, SnapAligner
from repro.formats.converters import import_reads
from repro.genome.synthetic import ReadSimulator, synthetic_reference
from repro.storage.base import MemoryStore

GENOME_LENGTH = 30_000
READ_LENGTH = 101


@pytest.fixture(scope="session")
def reference():
    return synthetic_reference(GENOME_LENGTH, num_contigs=2, seed=1234)


@pytest.fixture(scope="session")
def reads_and_origins(reference):
    simulator = ReadSimulator(
        reference, read_length=READ_LENGTH, duplicate_fraction=0.1, seed=99
    )
    return simulator.simulate(600)


@pytest.fixture(scope="session")
def reads(reads_and_origins):
    return reads_and_origins[0]


@pytest.fixture(scope="session")
def origins(reads_and_origins):
    return reads_and_origins[1]


@pytest.fixture(scope="session")
def seed_index(reference):
    return SeedIndex(reference, seed_length=16, max_hits=32)


@pytest.fixture(scope="session")
def snap_aligner(seed_index):
    return SnapAligner(seed_index)


@pytest.fixture(scope="session")
def fm_index(reference):
    return FMIndex(reference)


@pytest.fixture(scope="session")
def bwa_aligner(fm_index):
    return BwaMemAligner(fm_index)


@pytest.fixture()
def dataset(reads, reference):
    """A fresh unaligned dataset per test (mutable)."""
    return import_reads(
        reads,
        "fixture",
        MemoryStore(),
        chunk_size=100,
        reference=reference.manifest_entry(),
    )


@pytest.fixture(scope="session")
def aligned_results(reads, snap_aligner):
    """Alignment results for the session read set (read-only)."""
    return [snap_aligner.align_read(r.bases) for r in reads]


@pytest.fixture()
def aligned_dataset(reads, reference, aligned_results):
    """A fresh aligned dataset per test (mutable)."""
    ds = import_reads(
        reads,
        "aligned",
        MemoryStore(),
        chunk_size=100,
        reference=reference.manifest_entry(),
    )
    ds.append_column("results", list(aligned_results))
    return ds
