"""Tests for the FM-index: suffix array, BWT, count, locate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.bwa.fm_index import FMIndex, suffix_array
from repro.genome.reference import reference_from_sequences

texts = st.binary(min_size=1, max_size=120).map(
    lambda b: bytes(b"ACGT"[x % 4] for x in b)
)
patterns = st.binary(min_size=1, max_size=8).map(
    lambda b: bytes(b"ACGT"[x % 4] for x in b)
)


def naive_count(text: bytes, pattern: bytes) -> int:
    count = start = 0
    while True:
        at = text.find(pattern, start)
        if at < 0:
            return count
        count += 1
        start = at + 1


class TestSuffixArray:
    def test_known(self):
        # banana with sentinel: codes b=2,a=1,n=3 + 0
        codes = np.array([2, 1, 3, 1, 3, 1, 0], dtype=np.uint8)
        sa = suffix_array(codes)
        suffixes = sorted(range(7), key=lambda i: codes[i:].tobytes())
        assert list(sa) == suffixes

    @given(texts)
    @settings(max_examples=80)
    def test_matches_naive(self, text):
        codes = np.frombuffer(text, dtype=np.uint8).astype(np.uint8)
        # Map to 1..4 and append sentinel 0.
        mapped = (codes % 4 + 1).astype(np.uint8)
        full = np.append(mapped, 0)
        sa = suffix_array(full)
        expected = sorted(range(len(full)), key=lambda i: full[i:].tobytes())
        assert list(sa) == expected

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            suffix_array(np.array([], dtype=np.uint8))


class TestFMIndex:
    @pytest.fixture(scope="class")
    def small_index(self):
        ref = reference_from_sequences([("c", b"ACGTACGTTTACGGACGT")])
        return FMIndex(ref, occ_checkpoint=4, sa_sample=2)

    def test_count_exact(self, small_index):
        text = b"ACGTACGTTTACGGACGT"
        for pattern in (b"ACGT", b"TT", b"GG", b"ACG", b"T"):
            assert small_index.count(pattern) == naive_count(text, pattern)

    def test_count_absent(self, small_index):
        assert small_index.count(b"AAAA") == 0
        assert small_index.search(b"AAAA") is None

    def test_empty_pattern_full_interval(self, small_index):
        lo, hi = small_index.search(b"")
        assert hi - lo == small_index.length

    def test_locate(self, small_index):
        text = b"ACGTACGTTTACGGACGT"
        interval = small_index.search(b"ACGT")
        positions = sorted(small_index.locate(interval))
        expected = sorted(
            i for i in range(len(text) - 3) if text[i : i + 4] == b"ACGT"
        )
        assert positions == expected

    def test_locate_limit(self, small_index):
        interval = small_index.search(b"ACG")
        limited = small_index.locate(interval, limit=2)
        assert len(limited) == 2

    def test_occ_prefix_sums(self, small_index):
        # occ(c, i) must be monotone and end at total counts.
        for symbol in range(5):
            last = 0
            for i in range(small_index.length + 1):
                value = small_index.occ(symbol, i)
                assert value >= last
                last = value
            total = int((small_index.bwt == symbol).sum())
            assert small_index.occ(symbol, small_index.length) == total

    def test_lf_is_permutation(self, small_index):
        rows = [small_index.lf(r) for r in range(small_index.length)]
        assert sorted(rows) == list(range(small_index.length))

    def test_invalid_params(self):
        ref = reference_from_sequences([("c", b"ACGT")])
        with pytest.raises(ValueError):
            FMIndex(ref, occ_checkpoint=0)
        with pytest.raises(ValueError):
            FMIndex(ref, sa_sample=0)

    @given(patterns)
    @settings(max_examples=60)
    def test_count_property(self, pattern):
        ref = reference_from_sequences(
            [("c", b"ACGTACGTTTACGGACGTAACCGGTTACGTACGT")]
        )
        index = FMIndex(ref, occ_checkpoint=8, sa_sample=4)
        text = b"ACGTACGTTTACGGACGTAACCGGTTACGTACGT"
        assert index.count(pattern) == naive_count(text, pattern)

    def test_synthetic_genome_substrings(self, fm_index, reference):
        genome = reference.concatenated()
        rng = np.random.default_rng(7)
        for _ in range(25):
            start = int(rng.integers(0, len(genome) - 30))
            pattern = genome[start : start + 25]
            interval = fm_index.search(pattern)
            assert interval is not None
            positions = fm_index.locate(interval, limit=50)
            assert start in positions
            for p in positions:
                assert genome[p : p + 25] == pattern

    def test_memory_accounting(self, fm_index):
        assert fm_index.memory_bytes() > 0
