"""One-graph pipeline tests: composed stages vs the eager per-stage path.

The acceptance property of the streaming refactor: a single
``Session.run`` executing align -> sort -> dupmark -> varcall produces
results byte-identical to running the eager single-stage functions one
after another — records, duplicate flags, and VCF rows — on every
execution backend.
"""

from __future__ import annotations

import io

import pytest

from repro.agd.dataset import AGDDataset
from repro.core.dupmark import mark_duplicates
from repro.core.pipelines import align_dataset, run_pipeline
from repro.core.sort import SortConfig, sort_dataset, verify_sorted
from repro.core.subgraphs import (
    AlignGraphConfig,
    PipelineBuilder,
    build_align_stage,
    build_dupmark_graph,
    build_sort_graph,
    build_varcall_graph,
    compose,
)
from repro.core.varcall import call_variants
from repro.dataflow.graph import Graph, GraphError
from repro.dataflow.node import CollectSink, IterableSource, LambdaNode
from repro.dataflow.session import Session
from repro.formats.converters import import_reads
from repro.formats.vcf import write_vcf
from repro.storage.base import MemoryStore

SORT_CONFIG = SortConfig(chunks_per_superchunk=2)


@pytest.fixture()
def fresh_dataset(reads, reference):
    def factory():
        return import_reads(
            reads, "pg", MemoryStore(), chunk_size=100,
            reference=reference.manifest_entry(),
        )
    return factory


@pytest.fixture(scope="module")
def eager_chain(reads, reference, snap_aligner):
    """The reference five-pass eager run (align/sort/dupmark/varcall)."""
    dataset = import_reads(
        reads, "pg", MemoryStore(), chunk_size=100,
        reference=reference.manifest_entry(),
    )
    align_dataset(dataset, snap_aligner,
                  config=AlignGraphConfig(executor_threads=2))
    sorted_ds = sort_dataset(dataset, MemoryStore(), SORT_CONFIG)
    stats = mark_duplicates(sorted_ds)
    variants = call_variants(sorted_ds, reference)
    return sorted_ds, stats, variants


def vcf_bytes(variants, reference) -> bytes:
    buf = io.BytesIO()
    write_vcf(variants, buf, contigs=reference.manifest_entry())
    return buf.getvalue()


class TestOneGraphEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_matches_eager_path(
        self, backend, fresh_dataset, snap_aligner, reference, eager_chain
    ):
        eager_sorted, eager_stats, eager_variants = eager_chain
        dataset = fresh_dataset()
        outcome = run_pipeline(
            dataset,
            ("align", "sort", "dupmark", "varcall"),
            aligner=snap_aligner,
            reference=reference,
            align_config=AlignGraphConfig(executor_threads=2),
            sort_config=SORT_CONFIG,
            backend=backend,
            workers=2,
        )
        assert "results" in dataset.columns
        graph_sorted = outcome.sorted_dataset
        assert verify_sorted(graph_sorted)
        # Records byte-identical: every column of the sorted dataset,
        # including the duplicate flags dupmark rewrote.
        assert graph_sorted.manifest.columns == eager_sorted.manifest.columns
        for column in eager_sorted.columns:
            assert (graph_sorted.read_column(column)
                    == eager_sorted.read_column(column)), column
        # Duplicate-flag accounting identical.
        stats = outcome.dupmark_stats
        assert (stats.records, stats.duplicates_marked, stats.unmapped) == (
            eager_stats.records,
            eager_stats.duplicates_marked,
            eager_stats.unmapped,
        )
        assert stats.duplicates_marked > 0
        # VCF rows byte-identical.
        assert vcf_bytes(outcome.variants, reference) == vcf_bytes(
            eager_variants, reference
        )

    def test_stage_breakdowns(self, fresh_dataset, snap_aligner, reference):
        outcome = run_pipeline(
            fresh_dataset(),
            ("align", "sort", "dupmark", "varcall"),
            aligner=snap_aligner,
            reference=reference,
            sort_config=SORT_CONFIG,
            backend="serial",
        )
        assert [b.name for b in outcome.stages] == [
            "align", "sort", "dupmark", "varcall",
        ]
        align = outcome.stage("align")
        assert align.items_in > 0
        assert align.records == outcome.total_reads
        assert align.busy_seconds > 0
        assert outcome.stage("sort").busy_seconds >= 0
        assert "stages" in outcome.report
        assert outcome.report["stages"]["align"]["nodes"]

    def test_sorted_manifest_matches_eager(
        self, fresh_dataset, snap_aligner, reference, eager_chain
    ):
        eager_sorted, _, _ = eager_chain
        outcome = run_pipeline(
            fresh_dataset(),
            ("align", "sort"),
            aligner=snap_aligner,
            sort_config=SORT_CONFIG,
            backend="serial",
        )
        graph_manifest = outcome.sorted_dataset.manifest
        assert graph_manifest.name == eager_sorted.manifest.name
        assert graph_manifest.sort_order == "location"
        assert [
            (e.path, e.first_ordinal, e.record_count)
            for e in graph_manifest.chunks
        ] == [
            (e.path, e.first_ordinal, e.record_count)
            for e in eager_sorted.manifest.chunks
        ]


class TestSingleStagePipelines:
    def test_sort_only(self, aligned_dataset, eager_chain):
        outcome = run_pipeline(
            aligned_dataset, ("sort",), sort_config=SORT_CONFIG,
            backend="serial",
        )
        assert verify_sorted(outcome.sorted_dataset)
        assert outcome.dataset is outcome.sorted_dataset

    def test_dupmark_only_matches_eager(self, aligned_dataset, reference):
        expected = mark_duplicates(
            import_dataset_copy(aligned_dataset)
        )
        outcome = run_pipeline(aligned_dataset, ("dupmark",),
                               backend="serial")
        stats = outcome.dupmark_stats
        assert (stats.records, stats.duplicates_marked) == (
            expected.records, expected.duplicates_marked
        )
        assert outcome.sorted_dataset is None

    def test_dupmark_then_varcall_matches_eager(
        self, aligned_dataset, reference
    ):
        """Head-mode dupmark must widen its read set for a fused varcall."""
        eager_copy = import_dataset_copy(aligned_dataset)
        eager_stats = mark_duplicates(eager_copy)
        eager_variants = call_variants(eager_copy, reference)
        outcome = run_pipeline(
            aligned_dataset, ("dupmark", "varcall"), reference=reference,
            backend="serial",
        )
        stats = outcome.dupmark_stats
        assert (stats.records, stats.duplicates_marked) == (
            eager_stats.records, eager_stats.duplicates_marked
        )
        assert outcome.variants == eager_variants

    def test_varcall_only_matches_eager(self, aligned_dataset, reference):
        expected = call_variants(aligned_dataset, reference)
        outcome = run_pipeline(
            aligned_dataset, ("varcall",), reference=reference,
            backend="serial",
        )
        assert outcome.variants == expected

    def test_align_only(self, fresh_dataset, snap_aligner):
        dataset = fresh_dataset()
        outcome = run_pipeline(dataset, ("align",), aligner=snap_aligner,
                               backend="serial")
        assert "results" in dataset.columns
        results = dataset.read_column("results")
        assert sum(r.is_aligned for r in results) >= 0.95 * len(results)
        assert outcome.variants is None and outcome.dupmark_stats is None


def import_dataset_copy(dataset: AGDDataset) -> AGDDataset:
    """Deep-copy a dataset into a fresh store (eager-vs-graph isolation)."""
    store = MemoryStore()
    for entry in dataset.manifest.chunks:
        for column in dataset.columns:
            store.put(entry.chunk_file(column),
                      dataset.store.get(entry.chunk_file(column)))
    import copy

    return AGDDataset(copy.deepcopy(dataset.manifest), store)


class TestValidation:
    def test_rejects_out_of_order_stages(self, aligned_dataset, snap_aligner):
        with pytest.raises(ValueError, match="order"):
            run_pipeline(aligned_dataset, ("sort", "align"),
                         aligner=snap_aligner)

    def test_rejects_unknown_stage(self, aligned_dataset):
        with pytest.raises(ValueError, match="unknown"):
            run_pipeline(aligned_dataset, ("align", "polish"))

    def test_rejects_empty_stages(self, aligned_dataset):
        with pytest.raises(ValueError, match="at least one"):
            run_pipeline(aligned_dataset, ())

    def test_requires_aligner(self, dataset):
        with pytest.raises(ValueError, match="aligner"):
            run_pipeline(dataset, ("align",))

    def test_requires_reference_for_varcall(self, aligned_dataset):
        with pytest.raises(ValueError, match="reference"):
            run_pipeline(aligned_dataset, ("varcall",))

    def test_requires_results_without_align(self, dataset):
        with pytest.raises(ValueError, match="results"):
            run_pipeline(dataset, ("dupmark",))


class TestComposePrimitives:
    """Graph.merge / Graph.fuse / compose at the dataflow level."""

    def test_merge_prefixes_names_and_tags_stages(self):
        a, b = Graph("a"), Graph("b")
        qa = a.queue("out", 2)
        a.add(IterableSource("src", [1, 2, 3]), output=qa)
        a.add(CollectSink("snk"), input=qa)
        qb = b.queue("out", 2)
        b.add(IterableSource("src", [4]), output=qb)
        b.add(CollectSink("snk"), input=qb)
        g = Graph("merged")
        g.merge(a, prefix="first")
        g.merge(b, prefix="second")
        assert {n.name for n in g.nodes} == {
            "first.src", "first.snk", "second.src", "second.snk",
        }
        assert {q.name for q in g.queues} == {"first.out", "second.out"}
        assert g.node_stages["first.src"] == "first"
        report = g.stats_report()
        assert set(report["stages"]) == {"first", "second"}

    def test_merge_consumes_donor(self):
        a = Graph("a")
        qa = a.queue("out", 2)
        a.add(IterableSource("src", [1]), output=qa)
        a.add(CollectSink("snk"), input=qa)
        g1, g2 = Graph("g1"), Graph("g2")
        g1.merge(a, prefix="first")
        with pytest.raises(GraphError, match="already merged"):
            g2.merge(a, prefix="second")
        # The failed second merge changed nothing.
        assert g2.nodes == [] and g2.queues == []
        assert {n.name for n in g1.nodes} == {"first.src", "first.snk"}

    def test_merge_rejects_duplicate_names(self):
        a, b = Graph("a"), Graph("b")
        qa = a.queue("q", 2)
        a.add(IterableSource("src", []), output=qa)
        a.add(CollectSink("snk"), input=qa)
        qb = b.queue("q", 2)
        b.add(IterableSource("src", []), output=qb)
        b.add(CollectSink("snk"), input=qb)
        g = Graph("merged")
        g.merge(a)
        with pytest.raises(GraphError, match="duplicate"):
            g.merge(b)

    def test_merge_deduplicates_shared_resources(self):
        shared = object()
        a, b = Graph("a"), Graph("b")
        qa = a.queue("qa", 2)
        a.add(IterableSource("sa", []), output=qa)
        a.add(CollectSink("ka"), input=qa)
        a.register_resource("executor", shared)
        qb = b.queue("qb", 2)
        b.add(IterableSource("sb", []), output=qb)
        b.add(CollectSink("kb"), input=qb)
        b.register_resource("executor", shared)
        g = Graph("merged")
        g.merge(a, prefix="a")
        g.merge(b, prefix="b")
        assert g.resources.get("executor") is shared

    def test_merge_rejects_conflicting_resources(self):
        a, b = Graph("a"), Graph("b")
        qa = a.queue("qa", 2)
        a.add(IterableSource("sa", []), output=qa)
        a.add(CollectSink("ka"), input=qa)
        a.register_resource("executor", object())
        qb = b.queue("qb", 2)
        b.add(IterableSource("sb", []), output=qb)
        b.add(CollectSink("kb"), input=qb)
        b.register_resource("executor", object())
        g = Graph("merged")
        g.merge(a, prefix="a")
        with pytest.raises(ValueError, match="already registered"):
            g.merge(b, prefix="b")

    def test_fuse_runs_two_stage_graph(self):
        # Stage 1: source -> double -> [sink queue]
        s1 = Graph("s1")
        q_in = s1.queue("in", 2)
        q_out = s1.queue("out", 2)
        s1.add(IterableSource("src", [1, 2, 3]), output=q_in)
        s1.add(LambdaNode("double", lambda x: x * 2),
               input=q_in, output=q_out)
        # Stage 2: [open inlet] -> add1 -> sink
        s2 = Graph("s2")
        q_src = s2.queue("in", 2)
        q_done = s2.queue("done", 2)
        sink = CollectSink("snk")
        s2.add(LambdaNode("add1", lambda x: x + 1),
               input=q_src, output=q_done)
        s2.add(sink, input=q_done)
        g = Graph("fused")
        g.merge(s1, prefix="s1")
        g.merge(s2, prefix="s2")
        g.fuse(q_out, q_src)
        assert "s2.in" not in {q.name for q in g.queues}
        Session(g).run(timeout=30)
        assert sorted(sink.collected) == [3, 5, 7]

    def test_fuse_rejects_fed_inlet(self):
        g = Graph("g")
        q1 = g.queue("q1", 2)
        q2 = g.queue("q2", 2)
        g.add(IterableSource("src", []), output=q2)
        with pytest.raises(GraphError, match="producer"):
            g.fuse(q1, q2)

    def test_compose_rejects_headless_first_stage(
        self, aligned_dataset, reference
    ):
        stage = build_varcall_graph(reference, backend="serial")
        try:
            with pytest.raises(GraphError, match="upstream"):
                compose(stage)
        finally:
            stage.close()

    def test_compose_rejects_stage_after_terminal(
        self, aligned_dataset, reference
    ):
        var = build_varcall_graph(
            reference, manifest=aligned_dataset.manifest,
            input_store=aligned_dataset.store, backend="serial",
        )
        dup = build_dupmark_graph(None, aligned_dataset.store,
                                  from_queue=True, backend="serial")
        try:
            with pytest.raises(GraphError, match="terminal"):
                compose(var, dup)
        finally:
            var.close()
            dup.close()

    def test_pipeline_builder_end_to_end(
        self, aligned_dataset, reference
    ):
        out_store = MemoryStore()
        sort_stage = build_sort_graph(
            aligned_dataset.manifest, out_store,
            input_store=aligned_dataset.store,
            config=SORT_CONFIG, backend="serial",
        )
        dup_stage = build_dupmark_graph(None, out_store, from_queue=True,
                                        backend="serial")
        pipeline = (PipelineBuilder("mini")
                    .add(sort_stage)
                    .add(dup_stage)
                    .build())
        try:
            result = pipeline.run(timeout=120)
        finally:
            pipeline.close()
        assert set(result.stage_report) == {"sort", "dupmark"}
        sorted_ds = AGDDataset(sort_stage.collector.manifest, out_store)
        assert verify_sorted(sorted_ds)
        assert pipeline.stage("dupmark").collector.dup_stats.records == \
            aligned_dataset.total_records
