"""Filter as a streaming dataflow stage, plus queue-capacity autotuning.

The filter stage must reproduce :func:`repro.core.filters.filter_dataset`
byte for byte when fused into the one-graph pipeline (closing the
ROADMAP "filter stage as a dataflow node" item), and
``suggest_queue_capacities`` must turn the PR-3 queue-depth traces into
capacities a second run can apply (first consumer of the autotuning
item).
"""

from __future__ import annotations

import io

import pytest

from repro.core.dupmark import mark_duplicates
from repro.core.filters import by_min_mapq, drop_duplicates, filter_dataset
from repro.core.pipelines import (
    align_dataset,
    run_pipeline,
    suggest_queue_capacities,
)
from repro.core.sort import SortConfig, sort_dataset
from repro.core.subgraphs import AlignGraphConfig
from repro.core.varcall import call_variants
from repro.formats.converters import import_reads
from repro.formats.vcf import write_vcf
from repro.storage.base import MemoryStore

SORT_CONFIG = SortConfig(chunks_per_superchunk=2)
PREDICATE_MAPQ = 30


@pytest.fixture()
def fresh_dataset(reads, reference):
    def factory():
        return import_reads(
            reads, "pg", MemoryStore(), chunk_size=100,
            reference=reference.manifest_entry(),
        )
    return factory


@pytest.fixture(scope="module")
def eager_filtered_chain(reads, reference, snap_aligner):
    """Eager five-pass reference: align, sort, dupmark, filter, varcall."""
    dataset = import_reads(
        reads, "pg", MemoryStore(), chunk_size=100,
        reference=reference.manifest_entry(),
    )
    align_dataset(dataset, snap_aligner,
                  config=AlignGraphConfig(executor_threads=2))
    sorted_ds = sort_dataset(dataset, MemoryStore(), SORT_CONFIG)
    mark_duplicates(sorted_ds)
    filtered = filter_dataset(sorted_ds, by_min_mapq(PREDICATE_MAPQ),
                              MemoryStore())
    variants = call_variants(filtered, reference)
    return sorted_ds, filtered, variants


def vcf_bytes(variants, reference) -> bytes:
    buf = io.BytesIO()
    write_vcf(variants, buf, contigs=reference.manifest_entry())
    return buf.getvalue()


class TestFilterStage:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_full_pipeline_matches_eager_filter(
        self, backend, fresh_dataset, snap_aligner, reference,
        eager_filtered_chain,
    ):
        _sorted_ds, eager_filtered, eager_variants = eager_filtered_chain
        outcome = run_pipeline(
            fresh_dataset(),
            ("align", "sort", "dupmark", "filter", "varcall"),
            aligner=snap_aligner,
            reference=reference,
            sort_config=SORT_CONFIG,
            filter_predicate=by_min_mapq(PREDICATE_MAPQ),
            backend=backend,
            workers=2,
        )
        graph_filtered = outcome.filtered_dataset
        assert graph_filtered is not None
        # Manifest identical: name, chunk layout, columns, sort order.
        assert graph_filtered.manifest.name == eager_filtered.manifest.name
        assert graph_filtered.manifest.sort_order == \
            eager_filtered.manifest.sort_order
        assert graph_filtered.manifest.columns == \
            eager_filtered.manifest.columns
        assert [
            (e.path, e.first_ordinal, e.record_count)
            for e in graph_filtered.manifest.chunks
        ] == [
            (e.path, e.first_ordinal, e.record_count)
            for e in eager_filtered.manifest.chunks
        ]
        # Chunk files byte-identical.
        for entry in eager_filtered.manifest.chunks:
            for column in eager_filtered.columns:
                key = entry.chunk_file(column)
                assert graph_filtered.store.get(key) == \
                    eager_filtered.store.get(key), key
        assert outcome.filter_stats.examined == 600
        assert outcome.filter_stats.kept == \
            eager_filtered.manifest.total_records
        assert vcf_bytes(outcome.variants, reference) == \
            vcf_bytes(eager_variants, reference)

    def test_head_mode_filter_only(self, aligned_dataset):
        expected = filter_dataset(aligned_dataset,
                                  by_min_mapq(PREDICATE_MAPQ),
                                  MemoryStore())
        outcome = run_pipeline(
            aligned_dataset, ("filter",),
            filter_predicate=by_min_mapq(PREDICATE_MAPQ),
            backend="serial",
        )
        assert outcome.filtered_dataset.manifest.name == \
            expected.manifest.name
        for column in expected.columns:
            assert (outcome.filtered_dataset.read_column(column)
                    == expected.read_column(column)), column
        assert outcome.sorted_dataset is None

    def test_filter_then_varcall(self, aligned_dataset, reference):
        expected_filtered = filter_dataset(
            aligned_dataset, drop_duplicates(), MemoryStore()
        )
        expected_variants = call_variants(expected_filtered, reference)
        outcome = run_pipeline(
            aligned_dataset, ("filter", "varcall"),
            reference=reference,
            filter_predicate=drop_duplicates(),
            backend="serial",
        )
        assert outcome.variants == expected_variants
        assert outcome.filter_stats.kept == \
            expected_filtered.manifest.total_records

    def test_filter_requires_predicate(self, aligned_dataset):
        with pytest.raises(ValueError, match="filter_predicate"):
            run_pipeline(aligned_dataset, ("filter",))

    def test_filter_keeps_order_within_pipeline_stages(self, aligned_dataset):
        with pytest.raises(ValueError, match="order"):
            run_pipeline(aligned_dataset, ("varcall", "filter"),
                         filter_predicate=drop_duplicates())


class TestQueueAutotuning:
    def test_suggest_grows_saturated_and_shrinks_idle(self):
        report = {
            "queues": {
                "align.parsed": {"capacity": 4, "max_depth": 4},
                "align.raw": {"capacity": 8, "max_depth": 2},
                "sort.runs": {"capacity": 2, "max_depth": 1},
            },
            "queue_trace": {
                "depths": {
                    "align.parsed": [4, 4, 3, 4],
                    "align.raw": [0, 1, 2, 1],
                    "sort.runs": [1, 1, 0, 1],
                },
            },
        }
        suggestions = suggest_queue_capacities(report)
        assert suggestions["align.parsed"] == 8  # pinned at capacity: grow
        assert suggestions["align.raw"] == 3  # p95 depth 2 + headroom 1
        assert "sort.runs" not in suggestions  # already right-sized

    def test_suggest_handles_missing_trace(self):
        report = {"queues": {"q": {"capacity": 4, "max_depth": 1}}}
        assert suggest_queue_capacities(report) == {"q": 2}

    def test_autotuned_run_matches_untuned_output(
        self, fresh_dataset, snap_aligner, reference
    ):
        baseline = run_pipeline(
            fresh_dataset(), ("align", "sort", "dupmark", "varcall"),
            aligner=snap_aligner, reference=reference,
            sort_config=SORT_CONFIG, backend="serial",
        )
        tuned = run_pipeline(
            fresh_dataset(), ("align", "sort", "dupmark", "varcall"),
            aligner=snap_aligner, reference=reference,
            sort_config=SORT_CONFIG, backend="serial",
            autotune_queues=True,
        )
        assert "autotuned_queues" in tuned.report
        assert isinstance(tuned.report["autotuned_queues"], dict)
        # Capacities changed; bytes did not.
        for column in baseline.sorted_dataset.columns:
            assert (tuned.sorted_dataset.read_column(column)
                    == baseline.sorted_dataset.read_column(column)), column
        assert vcf_bytes(tuned.variants, reference) == \
            vcf_bytes(baseline.variants, reference)

    def test_explicit_queue_capacities_applied(
        self, aligned_dataset, reference
    ):
        outcome = run_pipeline(
            aligned_dataset, ("varcall",),
            reference=reference,
            backend="serial",
            queue_capacities={"varcall.raw_chunks": 7},
        )
        assert outcome.report["queues"]["varcall.raw_chunks"]["capacity"] \
            == 7


class TestTuneSidecar:
    """Persisted autotune suggestions: probe once, reuse forever."""

    def test_sidecar_roundtrip(self, tmp_path):
        from repro.core.pipelines import (
            load_tuned_capacities,
            save_tuned_capacities,
        )

        path = tmp_path / ".persona-tune.json"
        assert load_tuned_capacities(path, "k") is None  # missing file
        save_tuned_capacities(path, "k", {"align.parsed": 8})
        save_tuned_capacities(path, "other", {"sort.runs": 3})
        assert load_tuned_capacities(path, "k") == {"align.parsed": 8}
        assert load_tuned_capacities(path, "other") == {"sort.runs": 3}
        assert load_tuned_capacities(path, "absent") is None
        path.write_text("{not json")
        assert load_tuned_capacities(path, "k") is None  # never raises

    def test_repeat_run_skips_probe_and_matches(
        self, fresh_dataset, snap_aligner, reference, tmp_path, monkeypatch
    ):
        tune_path = tmp_path / ".persona-tune.json"
        kwargs = dict(
            aligner=snap_aligner, reference=reference,
            sort_config=SORT_CONFIG, backend="serial",
            autotune_queues=True, tune_path=tune_path,
        )
        first = run_pipeline(
            fresh_dataset(), ("align", "sort", "dupmark", "varcall"),
            **kwargs,
        )
        assert first.report["autotune_cache"] == "miss"
        assert tune_path.exists()

        # The second run must consume the sidecar, not probe again.
        import repro.core.pipelines as pipelines_mod

        def no_probe(*args, **kw):  # pragma: no cover - failure path
            raise AssertionError("probe ran despite a cached sidecar")

        monkeypatch.setattr(pipelines_mod, "suggest_queue_capacities",
                            no_probe)
        second = run_pipeline(
            fresh_dataset(), ("align", "sort", "dupmark", "varcall"),
            **kwargs,
        )
        assert second.report["autotune_cache"] == "hit"
        assert second.report["autotuned_queues"] == \
            first.report["autotuned_queues"]
        for column in first.sorted_dataset.columns:
            assert (second.sorted_dataset.read_column(column)
                    == first.sorted_dataset.read_column(column)), column
        assert vcf_bytes(second.variants, reference) == \
            vcf_bytes(first.variants, reference)

    def test_unwritable_sidecar_never_fails_the_run(self, tmp_path):
        from repro.core.pipelines import save_tuned_capacities

        target = tmp_path / "missing-dir" / "tune.json"
        assert save_tuned_capacities(target, "k", {"q": 2}) is False

    def test_key_mismatch_reprobes(self, tmp_path):
        from repro.core.pipelines import (
            _tune_key,
            load_tuned_capacities,
            save_tuned_capacities,
        )

        serial_key = _tune_key(("align", "sort"), "serial", 2)
        thread_key = _tune_key(("align", "sort"), "thread", 2)
        assert serial_key != thread_key
        path = tmp_path / "tune.json"
        save_tuned_capacities(path, serial_key, {"q": 4})
        assert load_tuned_capacities(path, thread_key) is None
